// Conference friend finder: the paper's motivating mobile-social-service
// scenario at Infocom06 scale.
//
// 78 attendees form research communities (shared country / affiliation /
// topic interests). Each phone enrolls against the rate-limited key
// service and uploads an encrypted profile — every round travels through
// the Transport API (net/transport.hpp) and a NetServer serving the
// dispatcher, exactly like a TCP deployment; here the link is an
// in-process pair whose byte accounting feeds the paper's 802.11n
// SimChannel model. An attendee then asks the untrusted conference server
// for the 5 most similar people nearby, verifies every result, and is
// shown what the server itself can (and cannot) see.
//
// Build & run:  ./build/examples/conference_friend_finder
#include <cstdio>
#include <map>

#include "core/service.hpp"
#include "core/smatch.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"
#include "net/channel.hpp"
#include "net/inproc_transport.hpp"
#include "net/server.hpp"

using namespace smatch;

int main() {
  Drbg rng(1806);

  // Attendee population: 6 profile attributes with wide alphabets so that
  // research communities stay distinct after fuzzy quantization.
  DatasetSpec spec;
  spec.name = "infocom-attendees";
  spec.num_users = 78;
  for (const char* name :
       {"country", "affiliation", "position", "topic_a", "topic_b", "topic_c"}) {
    spec.attributes.push_back(AttributeSpec::uniform(name, 6.0));
  }
  // 8 communities; attendees deviate from their community profile by at
  // most +/-2 per attribute (e.g. adjacent interests).
  const Dataset attendees = Dataset::generate_clustered(spec, rng, 8, 2);

  SchemeParams params;
  params.attribute_bits = 64;
  params.rs_threshold = 9;

  auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());
  const ClientConfig config = make_client_config(spec, params, group);

  // The two servers, wired behind one dispatcher and served like a TCP
  // deployment (enrolment needs one OPRF round per attendee, so the key
  // budget is off for this walkthrough).
  KeyServer key_server(RsaKeyPair::generate(rng, 1024),
                       KeyServerOptions{.requests_per_epoch = 0});
  MatchServer server;
  SmatchService service(server, key_server, /*top_k=*/5);
  NetServer net(service.dispatcher());
  ServerConfig net_config;  // in-process only: no tcp_port
  net_config.dispatch_workers = 2;
  if (Status s = net.start(net_config); !s.is_ok()) {
    std::printf("server start failed: %s\n", s.to_string().c_str());
    return 1;
  }

  SimChannel wifi({.bandwidth_mbps = 53.0, .latency_ms = 2.0});  // the paper's 802.11n link

  std::vector<Client> phones;
  phones.reserve(attendees.num_users());
  for (std::size_t u = 0; u < attendees.num_users(); ++u) {
    phones.push_back(
        Client::create(static_cast<UserId>(u + 1), attendees.profile(u), config).value());

    // One connection per phone: Keygen over the wire, then the upload.
    auto [phone_end, server_end] = InProcTransport::make_pair(&wifi);
    net.attach(std::move(server_end));
    RemoteClient remote(phones.back(), *phone_end, key_server.public_key());
    if (Status s = remote.enroll(rng); !s.is_ok()) {
      std::printf("enroll failed: %s\n", s.to_string().c_str());
      return 1;
    }
    if (Status s = remote.upload(rng); !s.is_ok()) {
      std::printf("upload failed: %s\n", s.to_string().c_str());
      return 1;
    }
    (void)phone_end->close();
  }

  std::printf("attendees: %zu   key groups: %zu   uplink traffic: %llu bytes "
              "(%.1f ms simulated on 802.11n)\n\n",
              server.num_users(), server.num_groups(),
              static_cast<unsigned long long>(wifi.uplink().bytes),
              wifi.uplink().sim_seconds * 1e3);

  // One attendee looks for friends: a kQuery round plus Vf on the result.
  const std::size_t querier = 17;
  Client& me = phones[querier];
  auto [my_end, their_end] = InProcTransport::make_pair(&wifi);
  net.attach(std::move(their_end));
  RemoteClient remote(me, *my_end, key_server.public_key());
  const auto report = remote.query(1, 1700000000).value();

  std::printf("attendee %u (community %zu) asked for 5 similar people:\n",
              me.id(), attendees.communities()[querier]);
  for (const auto& entry : report.verified) {
    std::printf("  matched attendee %-3u community %zu  distance %-3u  verify: PASS\n",
                entry.user_id, attendees.communities()[entry.user_id - 1],
                profile_distance(attendees.profile(querier),
                                 attendees.profile(entry.user_id - 1)));
  }
  std::printf("verified %zu match(es), rejected %zu\n\n", report.verified.size(),
              report.rejected);
  (void)my_end->close();
  net.stop();

  // What does the untrusted server actually hold? Group sizes and opaque
  // ciphertext order, nothing else — straight from the engine metrics.
  const ServerMetrics metrics = server.metrics();
  std::printf("server-side key-group size histogram (size -> #groups):\n");
  for (const auto& [size, count] : metrics.group_size_histogram) {
    std::printf("  %2zu -> %llu\n", size, static_cast<unsigned long long>(count));
  }
  std::printf("engine: %zu shard(s), %llu ciphertext comparisons for this query\n",
              server.num_shards(),
              static_cast<unsigned long long>(metrics.comparisons));
  std::printf("\ntotal traffic: %llu bytes up, %llu bytes down "
              "(upload %llu, query %llu, result %llu, oprf %llu)\n",
              static_cast<unsigned long long>(wifi.uplink().bytes),
              static_cast<unsigned long long>(wifi.downlink().bytes),
              static_cast<unsigned long long>(wifi.bytes_of(MessageKind::kUpload)),
              static_cast<unsigned long long>(wifi.bytes_of(MessageKind::kQuery)),
              static_cast<unsigned long long>(wifi.bytes_of(MessageKind::kResult)),
              static_cast<unsigned long long>(wifi.bytes_of(MessageKind::kOprf)));
  return 0;
}
