// Conference friend finder: the paper's motivating mobile-social-service
// scenario at Infocom06 scale.
//
// 78 attendees form research communities (shared country / affiliation /
// topic interests). Each phone uploads an encrypted profile; an attendee
// then asks the untrusted conference server for the 5 most similar people
// nearby, verifies every result, and is shown what the server itself can
// (and cannot) see.
//
// Build & run:  ./build/examples/conference_friend_finder
#include <cstdio>
#include <map>

#include "core/smatch.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"
#include "net/channel.hpp"

using namespace smatch;

int main() {
  Drbg rng(1806);

  // Attendee population: 6 profile attributes with wide alphabets so that
  // research communities stay distinct after fuzzy quantization.
  DatasetSpec spec;
  spec.name = "infocom-attendees";
  spec.num_users = 78;
  for (const char* name :
       {"country", "affiliation", "position", "topic_a", "topic_b", "topic_c"}) {
    spec.attributes.push_back(AttributeSpec::uniform(name, 6.0));
  }
  // 8 communities; attendees deviate from their community profile by at
  // most +/-2 per attribute (e.g. adjacent interests).
  const Dataset attendees = Dataset::generate_clustered(spec, rng, 8, 2);

  SchemeParams params;
  params.attribute_bits = 64;
  params.rs_threshold = 9;

  auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());
  const ClientConfig config = make_client_config(spec, params, group);

  RsaOprfServer key_server(RsaKeyPair::generate(rng, 1024));
  MatchServer server;
  SimChannel wifi({.bandwidth_mbps = 53.0, .latency_ms = 2.0});  // the paper's 802.11n link

  std::vector<Client> phones;
  phones.reserve(attendees.num_users());
  for (std::size_t u = 0; u < attendees.num_users(); ++u) {
    phones.push_back(
        Client::create(static_cast<UserId>(u + 1), attendees.profile(u), config).value());
    phones.back().generate_key(key_server, rng);
    const Bytes wire = phones.back().make_upload(rng).serialize();
    wifi.send_to_server(wire, MessageKind::kUpload);
    (void)server.ingest(UploadMessage::parse(wire).value());
  }

  std::printf("attendees: %zu   key groups: %zu   upload traffic: %llu bytes "
              "(%.1f ms simulated on 802.11n)\n\n",
              server.num_users(), server.num_groups(),
              static_cast<unsigned long long>(wifi.uplink().bytes),
              wifi.uplink().sim_seconds * 1e3);

  // One attendee looks for friends.
  const std::size_t querier = 17;
  const Client& me = phones[querier];
  const Bytes query_wire = me.make_query(1, 1700000000).serialize();
  wifi.send_to_server(query_wire, MessageKind::kQuery);

  const QueryResult result = server.match(QueryRequest::parse(query_wire).value(), 5).value();
  wifi.send_to_client(result.serialize(), MessageKind::kResult);

  std::printf("attendee %u (community %zu) asked for 5 similar people:\n",
              me.id(), attendees.communities()[querier]);
  std::size_t verified = 0;
  for (const auto& entry : result.entries) {
    const bool ok = me.verify_entry(entry);
    verified += ok;
    std::printf("  matched attendee %-3u community %zu  distance %-3u  verify: %s\n",
                entry.user_id, attendees.communities()[entry.user_id - 1],
                profile_distance(attendees.profile(querier),
                                 attendees.profile(entry.user_id - 1)),
                ok ? "PASS" : "FAIL");
  }
  std::printf("verified %zu/%zu matches\n\n", verified, result.entries.size());

  // What does the untrusted server actually hold? Group sizes and opaque
  // ciphertext order, nothing else — straight from the engine metrics.
  const ServerMetrics metrics = server.metrics();
  std::printf("server-side key-group size histogram (size -> #groups):\n");
  for (const auto& [size, count] : metrics.group_size_histogram) {
    std::printf("  %2zu -> %llu\n", size, static_cast<unsigned long long>(count));
  }
  std::printf("engine: %zu shard(s), %llu ciphertext comparisons for this query\n",
              server.num_shards(),
              static_cast<unsigned long long>(metrics.comparisons));
  std::printf("\ntotal traffic: %llu bytes up, %llu bytes down\n",
              static_cast<unsigned long long>(wifi.uplink().bytes),
              static_cast<unsigned long long>(wifi.downlink().bytes));
  return 0;
}
