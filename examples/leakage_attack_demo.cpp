// Why PPE must not touch raw social data (paper Section IV, Fig. 1).
//
// Part 1 reproduces the Fig. 1 pruning attack: an honest-but-curious
// server holding known (plaintext, ciphertext) pairs shrinks the search
// space for an unknown OPE ciphertext by exploiting the order property.
//
// Part 2 runs the landmark/frequency attack against a *naive* deployment
// (OPE directly on raw attribute values under one shared key) and then
// against S-MATCH's entropy-increased chains, showing the attack's
// accuracy collapse.
//
// Build & run:  ./build/examples/leakage_attack_demo
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "core/entropy_map.hpp"
#include "crypto/drbg.hpp"
#include "ope/ope.hpp"

using namespace smatch;

namespace {

// The Fig. 1 pruning attack: count how many of the stored ciphertexts
// could be Enc(target) given known pairs bracket it.
std::size_t search_space(const std::vector<std::uint64_t>& stored_ciphertexts,
                         std::uint64_t below_ct, std::uint64_t above_ct) {
  return static_cast<std::size_t>(std::count_if(
      stored_ciphertexts.begin(), stored_ciphertexts.end(),
      [&](std::uint64_t c) { return c > below_ct && c < above_ct; }));
}

}  // namespace

int main() {
  Drbg rng(4);

  // ---- Part 1: order-property pruning (Fig. 1) ----------------------------
  std::printf("== Part 1: search-space pruning with known pairs ==\n");
  // The server knows Enc(3) and Enc(7) and wants Enc(5). Its candidate set
  // is every stored ciphertext strictly between them.
  {
    // Fig. 1(a): a tiny deployment -> 3 candidates survive.
    const std::vector<std::uint64_t> stored = {10, 30, 42, 55, 61, 70, 88};
    std::printf("  sparse table : %zu candidates remain for Enc(5)\n",
                search_space(stored, /*Enc(3)=*/30, /*Enc(7)=*/70));

    // Fig. 1(b): a denser table -> more candidates, slower attack.
    std::vector<std::uint64_t> dense;
    for (std::uint64_t c = 1; c <= 100; ++c) dense.push_back(c);
    std::printf("  dense table  : %zu candidates remain for Enc(5)\n",
                search_space(dense, 30, 70));
  }

  // ---- Part 2: landmark frequency attack ----------------------------------
  std::printf("\n== Part 2: landmark attack, naive OPE vs S-MATCH mapping ==\n");
  // Education attribute, paper Section VI example: high school 0.3,
  // B.S. 0.4, M.S. 0.2, Ph.D. 0.1 — but make B.S. a 0.8 landmark to match
  // the Table II landmark setting.
  const std::vector<double> probs = {0.10, 0.80, 0.06, 0.04};
  const std::size_t population = 2000;

  // Draw the population.
  std::vector<AttrValue> values;
  values.reserve(population);
  for (std::size_t i = 0; i < population; ++i) {
    const double u = static_cast<double>(rng.u64() >> 11) * 0x1p-53;
    double acc = 0.0;
    AttrValue v = 0;
    for (std::size_t j = 0; j < probs.size(); ++j) {
      acc += probs[j];
      if (u < acc) { v = static_cast<AttrValue>(j); break; }
    }
    values.push_back(v);
  }

  // Naive deployment: everyone OPE-encrypts the raw value under the one
  // shared key. Deterministic encryption => the landmark ciphertext is the
  // most frequent one; the curious server labels it "B.S." and wins.
  {
    const Ope ope(rng.bytes(32), 8, 24);
    std::map<std::string, std::size_t> freq;
    for (AttrValue v : values) ++freq[ope.encrypt(BigInt{v}).to_decimal()];
    std::size_t top = 0;
    for (const auto& [ct, n] : freq) top = std::max(top, n);
    std::printf("  naive OPE    : distinct ciphertexts %4zu, top frequency %.1f%%"
                "  -> landmark exposed, server recovers 'B.S.' holders\n",
                freq.size(), 100.0 * static_cast<double>(top) / population);
  }

  // S-MATCH: entropy increase first. Every user picks a fresh string from
  // the value's sub-range, so ciphertext frequencies flatten to ~1 and the
  // landmark disappears.
  {
    const EntropyMapper mapper(probs, 64);
    const Ope ope(rng.bytes(32), 64, 128);
    std::map<std::string, std::size_t> freq;
    for (AttrValue v : values) ++freq[ope.encrypt(mapper.map(v, rng)).to_decimal()];
    std::size_t top = 0;
    for (const auto& [ct, n] : freq) top = std::max(top, n);
    std::printf("  S-MATCH      : distinct ciphertexts %4zu, top frequency %.2f%%"
                " -> no landmark visible\n",
                freq.size(), 100.0 * static_cast<double>(top) / population);
    std::printf("  mapped attribute entropy: %.1f bits (raw: %.2f bits, perfect: 64)\n",
                mapper.mapped_entropy(), mapper.original_entropy());
  }
  return 0;
}
