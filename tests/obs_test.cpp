// Observability-layer tests: histogram quantile accuracy against a
// sorted-vector reference, snapshot merging, trace ring-buffer overflow,
// Chrome-trace JSON well-formedness (parse + monotonic, properly nested
// timestamps), the Prometheus/JSON exporters, and a concurrent-recording
// stress meant to run under ThreadSanitizer (-DSMATCH_SANITIZE=thread).
//
// Everything here must also pass in a -DSMATCH_OBS=OFF build (the
// compile-time kill switch): the span-driven expectations are guarded on
// SMATCH_OBS_ENABLED, and the histogram/registry/validator layers are
// plain library code that never compiles out.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/client.hpp"
#include "core/key_server.hpp"
#include "core/metrics_export.hpp"
#include "core/server.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"
#include "group/modp_group.hpp"
#include "net/channel.hpp"
#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace smatch {
namespace {

using obs::Histogram;
using obs::HistogramSnapshot;
using obs::TraceBuffer;

// ---------------------------------------------------------------------------
// Histogram

TEST(ObsHistogram, BucketSchemeIsLog2) {
  EXPECT_EQ(obs::histogram_bucket(0), 0u);
  EXPECT_EQ(obs::histogram_bucket(1), 1u);
  EXPECT_EQ(obs::histogram_bucket(2), 2u);
  EXPECT_EQ(obs::histogram_bucket(3), 2u);
  EXPECT_EQ(obs::histogram_bucket(4), 3u);
  EXPECT_EQ(obs::histogram_bucket(1023), 10u);
  EXPECT_EQ(obs::histogram_bucket(1024), 11u);
  EXPECT_EQ(obs::histogram_bucket_bound(0), 0u);
  EXPECT_EQ(obs::histogram_bucket_bound(10), 1023u);
  // A value always sits inside its own bucket's bound.
  for (std::uint64_t v : {0ull, 1ull, 7ull, 4096ull, 123456789ull}) {
    EXPECT_LE(v, obs::histogram_bucket_bound(obs::histogram_bucket(v)));
  }
}

TEST(ObsHistogram, QuantilesWithinOneBucketOfSortedReference) {
  // Seeded log-uniform samples: magnitudes spread over ~12 octaves, the
  // shape of real latency data.
  std::mt19937_64 rng(2014);
  std::vector<std::uint64_t> samples;
  Histogram hist;
  for (int i = 0; i < 20000; ++i) {
    const int octave = static_cast<int>(rng() % 12);
    const std::uint64_t v = (std::uint64_t{1} << octave) + rng() % (1u << octave);
    samples.push_back(v);
    hist.record(v);
  }
  std::sort(samples.begin(), samples.end());

  const HistogramSnapshot snap = hist.snapshot();
  ASSERT_EQ(snap.count, samples.size());
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    // Reference order statistic at rank ceil(q * n), 1-based.
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    if (rank == 0) rank = 1;
    const std::uint64_t reference = samples[rank - 1];
    const std::uint64_t estimate = snap.quantile(q);
    const long ref_bucket = static_cast<long>(obs::histogram_bucket(reference));
    const long est_bucket = static_cast<long>(obs::histogram_bucket(estimate));
    EXPECT_LE(std::abs(ref_bucket - est_bucket), 1)
        << "q=" << q << " reference=" << reference << " estimate=" << estimate;
  }
}

TEST(ObsHistogram, MergeEqualsRecordingEverythingInOne) {
  std::mt19937_64 rng(7);
  Histogram a;
  Histogram b;
  Histogram combined;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng() % 1000000;
    (i % 2 == 0 ? a : b).record(v);
    combined.record(v);
  }
  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  const HistogramSnapshot reference = combined.snapshot();
  EXPECT_EQ(merged.count, reference.count);
  EXPECT_EQ(merged.sum, reference.sum);
  EXPECT_EQ(merged.buckets, reference.buckets);
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(merged.quantile(q), reference.quantile(q));
  }
}

TEST(ObsHistogram, EmptyAndResetBehaviour) {
  Histogram h;
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(h.snapshot().quantile(0.5), 0u);
  EXPECT_EQ(h.snapshot().mean(), 0.0);
  h.record(42);
  EXPECT_EQ(h.count(), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.snapshot().sum, 0u);
}

// ---------------------------------------------------------------------------
// Trace buffer + Chrome JSON

#if SMATCH_OBS_ENABLED

TEST(ObsTrace, RingBufferOverflowKeepsNewestAndCountsDrops) {
  TraceBuffer& buf = TraceBuffer::instance();
  buf.begin(/*capacity=*/64);
  for (int i = 0; i < 200; ++i) {
    SMATCH_SPAN("overflow.span");
  }
  buf.end();
  EXPECT_EQ(buf.capacity(), 64u);
  const auto events = buf.events();
  EXPECT_EQ(events.size(), 64u);
  EXPECT_EQ(buf.dropped(), 200u - 64u);
  // Oldest-first ring order: start timestamps are non-decreasing.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[i - 1].start_ns);
  }
  // Flat spans still export as a valid trace.
  std::string error;
  std::size_t names = 0;
  EXPECT_TRUE(obs::validate_chrome_trace(buf.chrome_json(), &error, &names)) << error;
  EXPECT_EQ(names, 1u);
}

TEST(ObsTrace, NestedSpansExportWellFormedJson) {
  TraceBuffer& buf = TraceBuffer::instance();
  buf.begin(/*capacity=*/1024);
  for (int i = 0; i < 10; ++i) {
    SMATCH_SPAN("outer");
    {
      SMATCH_SPAN("middle");
      { SMATCH_SPAN("inner"); }
      { SMATCH_SPAN("inner"); }
    }
  }
  buf.end();
  const std::vector<obs::TraceEvent> events = buf.events();
  ASSERT_EQ(events.size(), 40u);

  std::string error;
  std::size_t names = 0;
  ASSERT_TRUE(obs::validate_chrome_trace(buf.chrome_json(), &error, &names)) << error;
  EXPECT_EQ(names, 3u);

  // Depths recorded from the per-thread span stack.
  std::size_t by_depth[3] = {0, 0, 0};
  for (const auto& e : events) {
    ASSERT_LT(e.depth, 3u);
    ++by_depth[e.depth];
  }
  EXPECT_EQ(by_depth[0], 10u);
  EXPECT_EQ(by_depth[1], 10u);
  EXPECT_EQ(by_depth[2], 20u);
}

TEST(ObsTrace, DisabledBufferRecordsNothing) {
  TraceBuffer& buf = TraceBuffer::instance();
  buf.begin(/*capacity=*/64);
  buf.end();
  { SMATCH_SPAN("ignored"); }
  EXPECT_TRUE(buf.events().empty());
}

// End to end: a miniature enroll -> ingest -> match workload must leave
// spans from all three engines (and the crypto layers under them) in one
// trace — the property the CI artifact gate checks at full size.
TEST(ObsTrace, EndToEndWorkloadCoversAllThreeEngines) {
  DatasetSpec spec;
  spec.name = "obs-e2e";
  spec.num_users = 3;
  for (int i = 0; i < 4; ++i) {
    spec.attributes.push_back(AttributeSpec::uniform("a" + std::to_string(i), 4.0));
  }
  SchemeParams params;
  params.attribute_bits = 16;
  params.rs_threshold = 8;
  params.quant_width = 16;  // one quantization cell: the fleet shares a key group
  const ClientConfig config = make_client_config(
      spec, params, std::make_shared<const ModpGroup>(ModpGroup::test_512()));

  Drbg rng(99);
  KeyServer key_server(RsaKeyPair::generate(rng, 512),
                       KeyServerOptions{.requests_per_epoch = 0, .batch_threads = 1});
  std::vector<Client> fleet;
  for (UserId id = 1; id <= 3; ++id) {
    fleet.push_back(Client::create(id, Profile{1, 2, 3, 4}, config).value());
  }
  std::vector<Client*> clients{&fleet[0], &fleet[1], &fleet[2]};

  TraceBuffer& buf = TraceBuffer::instance();
  buf.begin(/*capacity=*/1 << 14);
  const auto uploads = enroll_and_upload_batch(clients, key_server, rng);
  MatchServer server(ServerOptions{.num_shards = 2, .batch_threads = 1});
  for (const auto& up : uploads) {
    ASSERT_TRUE(up.is_ok()) << up.status().to_string();
    ASSERT_TRUE(server.ingest(*up).is_ok());
  }
  ASSERT_TRUE(server.match(fleet[0].make_query(1, 1), 2).is_ok());
  buf.end();

  std::string error;
  std::size_t names = 0;
  ASSERT_TRUE(obs::validate_chrome_trace(buf.chrome_json(), &error, &names)) << error;
  EXPECT_GE(names, 6u);

  std::set<std::string> seen;
  for (const auto& e : buf.events()) seen.insert(e.name);
  for (const char* required :
       {"client.enroll_batch", "client.encrypt_chain", "ope.encrypt",
        "keyserver.handle", "keyserver.modexp", "match.ingest", "match.match"}) {
    EXPECT_TRUE(seen.count(required)) << "missing span: " << required;
  }
}

#endif  // SMATCH_OBS_ENABLED

TEST(ObsTrace, ValidatorRejectsMalformedTraces) {
  std::string error;
  EXPECT_FALSE(obs::validate_chrome_trace("not json", &error, nullptr));
  EXPECT_FALSE(obs::validate_chrome_trace("[{\"name\":\"x\"}]", &error, nullptr));
  // Out-of-order timestamps.
  EXPECT_FALSE(obs::validate_chrome_trace(
      R"([{"name":"a","ph":"X","ts":5.0,"dur":1.0,"pid":1,"tid":0,"args":{"depth":0}},
          {"name":"b","ph":"X","ts":1.0,"dur":1.0,"pid":1,"tid":0,"args":{"depth":0}}])",
      &error, nullptr));
  EXPECT_NE(error.find("sorted"), std::string::npos);
  // A child that escapes its parent's interval.
  EXPECT_FALSE(obs::validate_chrome_trace(
      R"([{"name":"a","ph":"X","ts":0.0,"dur":1.0,"pid":1,"tid":0,"args":{"depth":0}},
          {"name":"b","ph":"X","ts":0.5,"dur":9.0,"pid":1,"tid":0,"args":{"depth":1}}])",
      &error, nullptr));
  EXPECT_NE(error.find("nested"), std::string::npos);
  // A depth-1 span with no parent at all.
  EXPECT_FALSE(obs::validate_chrome_trace(
      R"([{"name":"b","ph":"X","ts":0.5,"dur":1.0,"pid":1,"tid":0,"args":{"depth":1}}])",
      &error, nullptr));
  // The empty trace is well-formed.
  std::size_t names = 99;
  EXPECT_TRUE(obs::validate_chrome_trace("[]", &error, &names));
  EXPECT_EQ(names, 0u);
}

// ---------------------------------------------------------------------------
// Registry + exporters

TEST(ObsRegistry, SanitizesMetricNames) {
  EXPECT_EQ(obs::sanitize_metric_name("ope.encrypt-p99"), "ope_encrypt_p99");
  EXPECT_EQ(obs::sanitize_metric_name("9lives"), "_9lives");
  EXPECT_EQ(obs::sanitize_metric_name("already_fine:total"), "already_fine:total");
}

TEST(ObsRegistry, PrometheusTextExportsAllKinds) {
  obs::Registry reg;
  reg.counter("requests.total")->fetch_add(7, std::memory_order_relaxed);
  reg.gauge("queue.depth")->store(3, std::memory_order_relaxed);
  Histogram* h = reg.histogram("latency.ns");
  h->record(100);
  h->record(1000);
  h->record(100000);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("queue_depth 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("latency_ns_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("latency_ns_sum 101100"), std::string::npos);
  EXPECT_NE(text.find("latency_ns_count 3"), std::string::npos);

  // Cumulative le buckets: the +Inf count equals the total, every bound
  // in the output is a 2^i - 1 log2 bucket edge.
  const std::string json = reg.json();
  EXPECT_NE(json.find("\"requests_total\":7"), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\":3"), std::string::npos);
  EXPECT_NE(json.find("\"latency_ns\":{\"count\":3"), std::string::npos);
}

TEST(ObsRegistry, PublishedSnapshotsAndValuesExport) {
  obs::Registry reg;
  Histogram h;
  for (std::uint64_t v = 1; v <= 64; ++v) h.record(v * 1000);
  reg.publish("engine.stage_ns", h.snapshot());
  reg.publish_value("engine.ops_total", 12345.0);
  reg.publish_value("engine.residency", 42.0, /*as_gauge=*/true);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE engine_stage_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("engine_stage_ns_count 64"), std::string::npos);
  EXPECT_NE(text.find("# TYPE engine_ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE engine_residency gauge"), std::string::npos);

  // Re-publishing replaces, not accumulates.
  reg.publish_value("engine.ops_total", 5.0);
  EXPECT_NE(reg.prometheus_text().find("engine_ops_total 5"), std::string::npos);
}

TEST(ObsRegistry, EngineSnapshotsPublishThroughExportGlue) {
  obs::Registry reg;
  MatchServer server(ServerOptions{.num_shards = 2, .batch_threads = 2});
  Drbg rng(1);
  UploadMessage up;
  up.user_id = 1;
  up.key_index = rng.bytes(32);
  up.chain_cipher = BigInt{123};
  up.chain_cipher_bits = 64;
  up.auth_token = to_bytes("tok");
  ASSERT_TRUE(server.ingest(up).is_ok());
  export_metrics(reg, server.metrics());

  SimChannel channel;
  channel.send_to_server(up.serialize(), MessageKind::kUpload);
  export_metrics(reg, channel);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("smatch_match_ingests_total 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE smatch_match_ingest_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("smatch_channel_upload_messages_total 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE smatch_channel_upload_sim_latency_ns histogram"),
            std::string::npos);
#if SMATCH_OBS_ENABLED
  EXPECT_NE(text.find("smatch_match_ingest_latency_ns_count 1"), std::string::npos);
#endif
}

// ---------------------------------------------------------------------------
// Concurrency (run under -DSMATCH_SANITIZE=thread)

TEST(ObsStress, ConcurrentRecordingFromPoolWorkers) {
  ThreadPool pool(4);
  Histogram hist;
  obs::Registry reg;
  std::atomic<std::uint64_t>* counter = reg.counter("stress.ops");
#if SMATCH_OBS_ENABLED
  TraceBuffer::instance().begin(/*capacity=*/4096);
#endif

  constexpr std::size_t kOps = 20000;
  pool.parallel_for(kOps, [&](std::size_t i) {
    SMATCH_SPAN_HIST("stress.op", &hist);
    hist.record(i);
    counter->fetch_add(1, std::memory_order_relaxed);
    if (i % 1024 == 0) {
      // Snapshots and exports race with recording by design.
      (void)hist.snapshot();
      (void)reg.prometheus_text();
    }
  });

#if SMATCH_OBS_ENABLED
  TraceBuffer::instance().end();
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(TraceBuffer::instance().chrome_json(), &error,
                                         nullptr))
      << error;
  // kOps direct records + kOps span-driven records.
  EXPECT_EQ(hist.count(), 2 * kOps);
#else
  EXPECT_EQ(hist.count(), kOps);
#endif
  EXPECT_EQ(counter->load(std::memory_order_relaxed), kOps);

  const PoolMetrics pm = pool.metrics();
  EXPECT_GT(pm.tasks_executed, 0u);
  EXPECT_GE(pm.parallel_fors, 1u);
#if SMATCH_OBS_ENABLED
  EXPECT_GT(pm.task_run_ns.count, 0u);
#endif
}

}  // namespace
}  // namespace smatch
