// Observability-layer tests: histogram quantile accuracy against a
// sorted-vector reference, snapshot merging, trace ring-buffer overflow,
// Chrome-trace JSON well-formedness (parse + monotonic, properly nested
// timestamps), the Prometheus/JSON exporters, and a concurrent-recording
// stress meant to run under ThreadSanitizer (-DSMATCH_SANITIZE=thread).
//
// Everything here must also pass in a -DSMATCH_OBS=OFF build (the
// compile-time kill switch): the span-driven expectations are guarded on
// SMATCH_OBS_ENABLED, and the histogram/registry/validator layers are
// plain library code that never compiles out.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/client.hpp"
#include "core/key_server.hpp"
#include "core/metrics_export.hpp"
#include "core/server.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"
#include "group/modp_group.hpp"
#include "net/channel.hpp"
#include "obs/exemplar.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace smatch {
namespace {

using obs::Histogram;
using obs::HistogramSnapshot;
using obs::TraceBuffer;

// ---------------------------------------------------------------------------
// Histogram

TEST(ObsHistogram, BucketSchemeIsLog2) {
  EXPECT_EQ(obs::histogram_bucket(0), 0u);
  EXPECT_EQ(obs::histogram_bucket(1), 1u);
  EXPECT_EQ(obs::histogram_bucket(2), 2u);
  EXPECT_EQ(obs::histogram_bucket(3), 2u);
  EXPECT_EQ(obs::histogram_bucket(4), 3u);
  EXPECT_EQ(obs::histogram_bucket(1023), 10u);
  EXPECT_EQ(obs::histogram_bucket(1024), 11u);
  EXPECT_EQ(obs::histogram_bucket_bound(0), 0u);
  EXPECT_EQ(obs::histogram_bucket_bound(10), 1023u);
  // A value always sits inside its own bucket's bound.
  for (std::uint64_t v : {0ull, 1ull, 7ull, 4096ull, 123456789ull}) {
    EXPECT_LE(v, obs::histogram_bucket_bound(obs::histogram_bucket(v)));
  }
}

TEST(ObsHistogram, QuantilesWithinOneBucketOfSortedReference) {
  // Seeded log-uniform samples: magnitudes spread over ~12 octaves, the
  // shape of real latency data.
  std::mt19937_64 rng(2014);
  std::vector<std::uint64_t> samples;
  Histogram hist;
  for (int i = 0; i < 20000; ++i) {
    const int octave = static_cast<int>(rng() % 12);
    const std::uint64_t v = (std::uint64_t{1} << octave) + rng() % (1u << octave);
    samples.push_back(v);
    hist.record(v);
  }
  std::sort(samples.begin(), samples.end());

  const HistogramSnapshot snap = hist.snapshot();
  ASSERT_EQ(snap.count, samples.size());
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    // Reference order statistic at rank ceil(q * n), 1-based.
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    if (rank == 0) rank = 1;
    const std::uint64_t reference = samples[rank - 1];
    const std::uint64_t estimate = snap.quantile(q);
    const long ref_bucket = static_cast<long>(obs::histogram_bucket(reference));
    const long est_bucket = static_cast<long>(obs::histogram_bucket(estimate));
    EXPECT_LE(std::abs(ref_bucket - est_bucket), 1)
        << "q=" << q << " reference=" << reference << " estimate=" << estimate;
  }
}

TEST(ObsHistogram, MergeEqualsRecordingEverythingInOne) {
  std::mt19937_64 rng(7);
  Histogram a;
  Histogram b;
  Histogram combined;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng() % 1000000;
    (i % 2 == 0 ? a : b).record(v);
    combined.record(v);
  }
  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  const HistogramSnapshot reference = combined.snapshot();
  EXPECT_EQ(merged.count, reference.count);
  EXPECT_EQ(merged.sum, reference.sum);
  EXPECT_EQ(merged.buckets, reference.buckets);
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(merged.quantile(q), reference.quantile(q));
  }
}

TEST(ObsHistogram, EmptyAndResetBehaviour) {
  Histogram h;
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(h.snapshot().quantile(0.5), 0u);
  EXPECT_EQ(h.snapshot().mean(), 0.0);
  h.record(42);
  EXPECT_EQ(h.count(), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.snapshot().sum, 0u);
}

// ---------------------------------------------------------------------------
// Trace buffer + Chrome JSON

#if SMATCH_OBS_ENABLED

TEST(ObsTrace, RingBufferOverflowKeepsNewestAndCountsDrops) {
  TraceBuffer& buf = TraceBuffer::instance();
  buf.begin(/*capacity=*/64);
  for (int i = 0; i < 200; ++i) {
    SMATCH_SPAN("overflow.span");
  }
  buf.end();
  EXPECT_EQ(buf.capacity(), 64u);
  const auto events = buf.events();
  EXPECT_EQ(events.size(), 64u);
  EXPECT_EQ(buf.dropped(), 200u - 64u);
  // Oldest-first ring order: start timestamps are non-decreasing.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[i - 1].start_ns);
  }
  // Flat spans still export as a valid trace.
  std::string error;
  std::size_t names = 0;
  EXPECT_TRUE(obs::validate_chrome_trace(buf.chrome_json(), &error, &names)) << error;
  EXPECT_EQ(names, 1u);
}

TEST(ObsTrace, NestedSpansExportWellFormedJson) {
  TraceBuffer& buf = TraceBuffer::instance();
  buf.begin(/*capacity=*/1024);
  for (int i = 0; i < 10; ++i) {
    SMATCH_SPAN("outer");
    {
      SMATCH_SPAN("middle");
      { SMATCH_SPAN("inner"); }
      { SMATCH_SPAN("inner"); }
    }
  }
  buf.end();
  const std::vector<obs::TraceEvent> events = buf.events();
  ASSERT_EQ(events.size(), 40u);

  std::string error;
  std::size_t names = 0;
  ASSERT_TRUE(obs::validate_chrome_trace(buf.chrome_json(), &error, &names)) << error;
  EXPECT_EQ(names, 3u);

  // Depths recorded from the per-thread span stack.
  std::size_t by_depth[3] = {0, 0, 0};
  for (const auto& e : events) {
    ASSERT_LT(e.depth, 3u);
    ++by_depth[e.depth];
  }
  EXPECT_EQ(by_depth[0], 10u);
  EXPECT_EQ(by_depth[1], 10u);
  EXPECT_EQ(by_depth[2], 20u);
}

TEST(ObsTrace, DisabledBufferRecordsNothing) {
  TraceBuffer& buf = TraceBuffer::instance();
  buf.begin(/*capacity=*/64);
  buf.end();
  { SMATCH_SPAN("ignored"); }
  EXPECT_TRUE(buf.events().empty());
}

// End to end: a miniature enroll -> ingest -> match workload must leave
// spans from all three engines (and the crypto layers under them) in one
// trace — the property the CI artifact gate checks at full size.
TEST(ObsTrace, EndToEndWorkloadCoversAllThreeEngines) {
  DatasetSpec spec;
  spec.name = "obs-e2e";
  spec.num_users = 3;
  for (int i = 0; i < 4; ++i) {
    spec.attributes.push_back(AttributeSpec::uniform("a" + std::to_string(i), 4.0));
  }
  SchemeParams params;
  params.attribute_bits = 16;
  params.rs_threshold = 8;
  params.quant_width = 16;  // one quantization cell: the fleet shares a key group
  const ClientConfig config = make_client_config(
      spec, params, std::make_shared<const ModpGroup>(ModpGroup::test_512()));

  Drbg rng(99);
  KeyServer key_server(RsaKeyPair::generate(rng, 512),
                       KeyServerOptions{.requests_per_epoch = 0, .batch_threads = 1});
  std::vector<Client> fleet;
  for (UserId id = 1; id <= 3; ++id) {
    fleet.push_back(Client::create(id, Profile{1, 2, 3, 4}, config).value());
  }
  std::vector<Client*> clients{&fleet[0], &fleet[1], &fleet[2]};

  TraceBuffer& buf = TraceBuffer::instance();
  buf.begin(/*capacity=*/1 << 14);
  const auto uploads = enroll_and_upload_batch(clients, key_server, rng);
  MatchServer server(ServerOptions{.num_shards = 2, .batch_threads = 1});
  for (const auto& up : uploads) {
    ASSERT_TRUE(up.is_ok()) << up.status().to_string();
    ASSERT_TRUE(server.ingest(*up).is_ok());
  }
  ASSERT_TRUE(server.match(fleet[0].make_query(1, 1), 2).is_ok());
  buf.end();

  std::string error;
  std::size_t names = 0;
  ASSERT_TRUE(obs::validate_chrome_trace(buf.chrome_json(), &error, &names)) << error;
  EXPECT_GE(names, 6u);

  std::set<std::string> seen;
  for (const auto& e : buf.events()) seen.insert(e.name);
  for (const char* required :
       {"client.enroll_batch", "client.encrypt_chain", "ope.encrypt",
        "keyserver.handle", "keyserver.modexp", "match.ingest", "match.match"}) {
    EXPECT_TRUE(seen.count(required)) << "missing span: " << required;
  }
}

#endif  // SMATCH_OBS_ENABLED

TEST(ObsTrace, ValidatorRejectsMalformedTraces) {
  std::string error;
  EXPECT_FALSE(obs::validate_chrome_trace("not json", &error, nullptr));
  EXPECT_FALSE(obs::validate_chrome_trace("[{\"name\":\"x\"}]", &error, nullptr));
  // Out-of-order timestamps.
  EXPECT_FALSE(obs::validate_chrome_trace(
      R"([{"name":"a","ph":"X","ts":5.0,"dur":1.0,"pid":1,"tid":0,"args":{"depth":0}},
          {"name":"b","ph":"X","ts":1.0,"dur":1.0,"pid":1,"tid":0,"args":{"depth":0}}])",
      &error, nullptr));
  EXPECT_NE(error.find("sorted"), std::string::npos);
  // A child that escapes its parent's interval.
  EXPECT_FALSE(obs::validate_chrome_trace(
      R"([{"name":"a","ph":"X","ts":0.0,"dur":1.0,"pid":1,"tid":0,"args":{"depth":0}},
          {"name":"b","ph":"X","ts":0.5,"dur":9.0,"pid":1,"tid":0,"args":{"depth":1}}])",
      &error, nullptr));
  EXPECT_NE(error.find("nested"), std::string::npos);
  // A depth-1 span with no parent at all.
  EXPECT_FALSE(obs::validate_chrome_trace(
      R"([{"name":"b","ph":"X","ts":0.5,"dur":1.0,"pid":1,"tid":0,"args":{"depth":1}}])",
      &error, nullptr));
  // The empty trace is well-formed.
  std::size_t names = 99;
  EXPECT_TRUE(obs::validate_chrome_trace("[]", &error, &names));
  EXPECT_EQ(names, 0u);
}

// ---------------------------------------------------------------------------
// Registry + exporters

TEST(ObsRegistry, SanitizesMetricNames) {
  EXPECT_EQ(obs::sanitize_metric_name("ope.encrypt-p99"), "ope_encrypt_p99");
  EXPECT_EQ(obs::sanitize_metric_name("9lives"), "_9lives");
  EXPECT_EQ(obs::sanitize_metric_name("already_fine:total"), "already_fine:total");
}

TEST(ObsRegistry, PrometheusTextExportsAllKinds) {
  obs::Registry reg;
  reg.counter("requests.total")->fetch_add(7, std::memory_order_relaxed);
  reg.gauge("queue.depth")->store(3, std::memory_order_relaxed);
  Histogram* h = reg.histogram("latency.ns");
  h->record(100);
  h->record(1000);
  h->record(100000);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("queue_depth 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("latency_ns_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("latency_ns_sum 101100"), std::string::npos);
  EXPECT_NE(text.find("latency_ns_count 3"), std::string::npos);

  // Cumulative le buckets: the +Inf count equals the total, every bound
  // in the output is a 2^i - 1 log2 bucket edge.
  const std::string json = reg.json();
  EXPECT_NE(json.find("\"requests_total\":7"), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\":3"), std::string::npos);
  EXPECT_NE(json.find("\"latency_ns\":{\"count\":3"), std::string::npos);
}

TEST(ObsRegistry, PublishedSnapshotsAndValuesExport) {
  obs::Registry reg;
  Histogram h;
  for (std::uint64_t v = 1; v <= 64; ++v) h.record(v * 1000);
  reg.publish("engine.stage_ns", h.snapshot());
  reg.publish_value("engine.ops_total", 12345.0);
  reg.publish_value("engine.residency", 42.0, /*as_gauge=*/true);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE engine_stage_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("engine_stage_ns_count 64"), std::string::npos);
  EXPECT_NE(text.find("# TYPE engine_ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE engine_residency gauge"), std::string::npos);

  // Re-publishing replaces, not accumulates.
  reg.publish_value("engine.ops_total", 5.0);
  EXPECT_NE(reg.prometheus_text().find("engine_ops_total 5"), std::string::npos);
}

TEST(ObsRegistry, EngineSnapshotsPublishThroughExportGlue) {
  obs::Registry reg;
  MatchServer server(ServerOptions{.num_shards = 2, .batch_threads = 2});
  Drbg rng(1);
  UploadMessage up;
  up.user_id = 1;
  up.key_index = rng.bytes(32);
  up.chain_cipher = BigInt{123};
  up.chain_cipher_bits = 64;
  up.auth_token = to_bytes("tok");
  ASSERT_TRUE(server.ingest(up).is_ok());
  export_metrics(reg, server.metrics());

  SimChannel channel;
  channel.send_to_server(up.serialize(), MessageKind::kUpload);
  export_metrics(reg, channel);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("smatch_match_ingests_total 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE smatch_match_ingest_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("smatch_channel_upload_messages_total 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE smatch_channel_upload_sim_latency_ns histogram"),
            std::string::npos);
#if SMATCH_OBS_ENABLED
  EXPECT_NE(text.find("smatch_match_ingest_latency_ns_count 1"), std::string::npos);
#endif
}

// ---------------------------------------------------------------------------
// Concurrency (run under -DSMATCH_SANITIZE=thread)

TEST(ObsStress, ConcurrentRecordingFromPoolWorkers) {
  ThreadPool pool(4);
  Histogram hist;
  obs::Registry reg;
  std::atomic<std::uint64_t>* counter = reg.counter("stress.ops");
#if SMATCH_OBS_ENABLED
  TraceBuffer::instance().begin(/*capacity=*/4096);
#endif

  constexpr std::size_t kOps = 20000;
  pool.parallel_for(kOps, [&](std::size_t i) {
    SMATCH_SPAN_HIST("stress.op", &hist);
    hist.record(i);
    counter->fetch_add(1, std::memory_order_relaxed);
    if (i % 1024 == 0) {
      // Snapshots and exports race with recording by design.
      (void)hist.snapshot();
      (void)reg.prometheus_text();
    }
  });

#if SMATCH_OBS_ENABLED
  TraceBuffer::instance().end();
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(TraceBuffer::instance().chrome_json(), &error,
                                         nullptr))
      << error;
  // kOps direct records + kOps span-driven records.
  EXPECT_EQ(hist.count(), 2 * kOps);
#else
  EXPECT_EQ(hist.count(), kOps);
#endif
  EXPECT_EQ(counter->load(std::memory_order_relaxed), kOps);

  const PoolMetrics pm = pool.metrics();
  EXPECT_GT(pm.tasks_executed, 0u);
  EXPECT_GE(pm.parallel_fors, 1u);
#if SMATCH_OBS_ENABLED
  EXPECT_GT(pm.task_run_ns.count, 0u);
#endif
}

// --- Flight recorder ------------------------------------------------------

TEST(ObsFlight, KindNamesCoverEveryEnumerator) {
  using obs::FlightKind;
  for (const FlightKind k :
       {FlightKind::kConnAccepted, FlightKind::kConnClosed, FlightKind::kConnShed,
        FlightKind::kRequestShed, FlightKind::kRetry, FlightKind::kFsyncStall,
        FlightKind::kEviction, FlightKind::kWalAppend, FlightKind::kServerStart,
        FlightKind::kServerStop}) {
    EXPECT_NE(obs::flight_kind_name(k), nullptr);
    EXPECT_GT(std::string(obs::flight_kind_name(k)).size(), 0u);
  }
  EXPECT_STREQ(obs::flight_kind_name(obs::FlightKind::kFsyncStall), "fsync_stall");
}

TEST(ObsFlight, RingWrapKeepsNewestInTicketOrder) {
  auto& rec = obs::FlightRecorder::instance();
  rec.reset();
  const std::size_t overfill = obs::FlightRecorder::kCapacity + 500;
  for (std::size_t i = 0; i < overfill; ++i) {
    rec.record(obs::FlightKind::kRetry, /*a=*/i, /*b=*/i * 2);
  }
  EXPECT_EQ(rec.total(), overfill);
  const std::vector<obs::FlightEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), obs::FlightRecorder::kCapacity);
  // Oldest-first ticket order, and only the newest kCapacity survive.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
  EXPECT_EQ(events.front().seq, overfill - obs::FlightRecorder::kCapacity);
  EXPECT_EQ(events.back().seq, overfill - 1);
  EXPECT_EQ(events.back().a, overfill - 1);
  EXPECT_EQ(events.back().b, (overfill - 1) * 2);

  const std::string dump = rec.dump_text();
  EXPECT_NE(dump.find("retry"), std::string::npos);
  EXPECT_NE(dump.find("a="), std::string::npos);
  rec.reset();
}

TEST(ObsFlight, ConcurrentWritersAndReadersAreClean) {
  // Writers hammer the seqlock ring while readers snapshot it; under
  // ThreadSanitizer this is the data-race acceptance test, and in any
  // build a snapshot must never surface a torn slot (seq/a mismatch).
  auto& rec = obs::FlightRecorder::instance();
  rec.reset();
  ThreadPool pool(4);
  constexpr std::size_t kOps = 8000;
  pool.parallel_for(kOps, [&](std::size_t i) {
    rec.record(obs::FlightKind::kConnAccepted, i, i + 1);
    if (i % 512 == 0) {
      for (const obs::FlightEvent& ev : rec.snapshot()) {
        EXPECT_EQ(ev.b, ev.a + 1);
      }
    }
  });
  EXPECT_EQ(rec.total(), kOps);
  const std::vector<obs::FlightEvent> events = rec.snapshot();
  EXPECT_EQ(events.size(), std::min<std::size_t>(kOps, obs::FlightRecorder::kCapacity));
  rec.reset();
}

// --- Exemplar recorder ----------------------------------------------------

#if SMATCH_OBS_ENABLED
namespace {
obs::TraceEvent span_at(const char* name, std::uint64_t start_ns,
                        std::uint64_t trace_id) {
  obs::TraceEvent ev;
  ev.name = name;
  ev.start_ns = start_ns;
  ev.duration_ns = 100;
  ev.trace_id = trace_id;
  return ev;
}
}  // namespace

TEST(ObsExemplar, ThresholdGatesCaptureAndRingStaysBounded) {
  auto& rec = obs::ExemplarRecorder::instance();
  rec.clear();
  rec.arm(/*threshold_ns=*/1000, /*ring_capacity=*/4);

  // Below threshold: pending spans are discarded.
  rec.record_span(7, span_at("fast", 500, 7));
  rec.finish(7, 999);
  EXPECT_EQ(rec.occupancy(), 0u);

  // At/above threshold: captured, spans rebased to t=0, ring bounded at 4.
  for (std::uint64_t t = 1; t <= 6; ++t) {
    rec.record_span(t, span_at("outer", 10000 + t, t));
    rec.record_span(t, span_at("inner", 10050 + t, t));
    rec.finish(t, 1000 + t);
  }
  EXPECT_EQ(rec.occupancy(), 4u);
  EXPECT_EQ(rec.captured_total(), 6u);
  const std::vector<obs::Exemplar> kept = rec.exemplars();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept.front().trace_id, 3u);  // oldest two evicted
  EXPECT_EQ(kept.back().trace_id, 6u);
  for (const obs::Exemplar& ex : kept) {
    ASSERT_EQ(ex.spans.size(), 2u);
    EXPECT_EQ(ex.spans.front().start_ns, 0u);  // rebased
    for (const auto& s : ex.spans) EXPECT_EQ(s.trace_id, ex.trace_id);
  }

  // Export is a valid Chrome trace carrying the exemplar annotations.
  std::string error;
  ASSERT_TRUE(obs::validate_chrome_trace(rec.chrome_json(), &error, nullptr)) << error;
  EXPECT_NE(rec.chrome_json().find("exemplar_total_ns"), std::string::npos);
  rec.disarm();
  rec.clear();
}

TEST(ObsExemplar, PendingTableOverflowIsCountedNotUnbounded) {
  auto& rec = obs::ExemplarRecorder::instance();
  rec.clear();
  rec.arm(/*threshold_ns=*/1);
  const std::uint64_t overflow_before = rec.pending_overflows();
  // More distinct in-flight traces than the pending table admits.
  const std::size_t attempts = obs::ExemplarRecorder::kMaxPendingTraces + 50;
  for (std::uint64_t t = 1; t <= attempts; ++t) {
    rec.record_span(t, span_at("s", t, t));
  }
  EXPECT_GE(rec.pending_overflows() - overflow_before, 50u);
  // Disarmed recorder drops its pending state and records nothing new.
  rec.disarm();
  rec.record_span(1, span_at("s", 1, 1));
  rec.finish(1, std::uint64_t{1} << 60);
  EXPECT_EQ(rec.occupancy(), 0u);
  rec.clear();
}

TEST(ObsTrace, ContextScopeNestsAndStampsSpans) {
  EXPECT_EQ(obs::current_trace_context().trace_id, 0u);
  TraceBuffer& buf = TraceBuffer::instance();
  buf.begin(/*capacity=*/64);
  {
    obs::TraceContextScope outer(0xaaaa, 0x1);
    EXPECT_EQ(obs::current_trace_context().trace_id, 0xaaaau);
    { SMATCH_SPAN("ctx.outer"); }
    {
      obs::TraceContextScope inner(0xbbbb, 0x2);
      EXPECT_EQ(obs::current_trace_context().trace_id, 0xbbbbu);
      { SMATCH_SPAN("ctx.inner"); }
    }
    // Restored on scope exit.
    EXPECT_EQ(obs::current_trace_context().trace_id, 0xaaaau);
  }
  EXPECT_EQ(obs::current_trace_context().trace_id, 0u);
  buf.end();

  const std::vector<obs::TraceEvent> events = buf.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace_id, 0xaaaau);
  EXPECT_EQ(events[1].trace_id, 0xbbbbu);

  // chrome_json carries the trace id as a 16-hex-digit args entry the
  // validator checks.
  const std::string json = buf.chrome_json();
  EXPECT_NE(json.find("\"trace\":\"000000000000aaaa\""), std::string::npos);
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &error, nullptr)) << error;
}
#endif  // SMATCH_OBS_ENABLED

// --- Prometheus exposition lint and histogram parsing ---------------------

TEST(ObsRegistry, LintAcceptsOwnExposition) {
  obs::Registry reg;
  reg.counter("lint_ops_total")->store(7);
  reg.gauge("lint_depth")->store(3);
  Histogram* hist = reg.histogram("lint_rtt_ns");
  for (std::uint64_t v : {100u, 200u, 4000u, 90000u}) hist->record(v);
  std::string error;
  EXPECT_TRUE(obs::lint_prometheus_text(reg.prometheus_text(), &error)) << error;

  // The global registry's exposition (whatever prior tests left in it)
  // must lint clean too — this is the admin /metrics surface.
  obs::Registry::global().counter("lint_global_probe_total")->fetch_add(1);
  EXPECT_TRUE(obs::lint_prometheus_text(obs::Registry::global().prometheus_text(),
                                        &error))
      << error;
}

TEST(ObsRegistry, LintRejectsMalformedExpositions) {
  std::string error;
  // Invalid charset in the metric name.
  EXPECT_FALSE(obs::lint_prometheus_text("# TYPE bad-name counter\nbad-name 1\n",
                                         &error));
  // Sample without a preceding TYPE line.
  EXPECT_FALSE(obs::lint_prometheus_text("orphan_total 1\n", &error));
  EXPECT_NE(error.find("TYPE"), std::string::npos);
  // Non-cumulative histogram buckets.
  EXPECT_FALSE(obs::lint_prometheus_text(
      "# TYPE h_ns histogram\n"
      "h_ns_bucket{le=\"1\"} 5\n"
      "h_ns_bucket{le=\"2\"} 3\n"
      "h_ns_bucket{le=\"+Inf\"} 5\n"
      "h_ns_sum 10\nh_ns_count 5\n",
      &error));
  EXPECT_NE(error.find("cumulative"), std::string::npos);
  // Unknown metric type.
  EXPECT_FALSE(obs::lint_prometheus_text("# TYPE x summary\nx 1\n", &error));
}

TEST(ObsRegistry, PrometheusHistogramRoundTripsThroughParser) {
  obs::Registry reg;
  Histogram* hist = reg.histogram("rt_ns");
  std::mt19937_64 rng(42);
  for (int i = 0; i < 5000; ++i) hist->record(rng() % 1000000);
  const HistogramSnapshot direct = hist->snapshot();

  HistogramSnapshot parsed;
  ASSERT_TRUE(obs::parse_prometheus_histogram(reg.prometheus_text(), "rt_ns", &parsed));
  EXPECT_EQ(parsed.count, direct.count);
  EXPECT_EQ(parsed.buckets, direct.buckets);
  EXPECT_EQ(parsed.p50(), direct.p50());
  EXPECT_EQ(parsed.p99(), direct.p99());

  // Unknown family name fails cleanly.
  HistogramSnapshot missing;
  EXPECT_FALSE(obs::parse_prometheus_histogram(reg.prometheus_text(), "nope_ns",
                                               &missing));
}

}  // namespace
}  // namespace smatch
