// ModpGroup tests: safe-prime structure, QR-subgroup membership, and the
// exponent laws the verification protocol depends on.
#include <gtest/gtest.h>

#include "bigint/prime.hpp"
#include "common/error.hpp"
#include "crypto/drbg.hpp"
#include "group/modp_group.hpp"

namespace smatch {
namespace {

TEST(ModpGroup, Test512IsSafePrimeGroup) {
  const ModpGroup g = ModpGroup::test_512();
  Drbg rng(1);
  EXPECT_EQ(g.p().bit_length(), 512u);
  EXPECT_TRUE(is_probable_prime(g.p(), rng, 16));
  EXPECT_TRUE(is_probable_prime(g.q(), rng, 16));
  EXPECT_EQ(g.p(), (g.q() << 1) + BigInt{1});
}

TEST(ModpGroup, Rfc3526GroupValidates) {
  const ModpGroup g = ModpGroup::rfc3526_2048();
  EXPECT_EQ(g.p().bit_length(), 2048u);
  EXPECT_EQ(g.element_bytes(), 256u);
  // Generator lies in the QR subgroup of order q.
  EXPECT_TRUE(g.contains(g.g()));
}

TEST(ModpGroup, GeneratorPowersStayInSubgroup) {
  const ModpGroup g = ModpGroup::test_512();
  Drbg rng(2);
  for (int iter = 0; iter < 10; ++iter) {
    const BigInt e = g.random_exponent(rng);
    EXPECT_TRUE(g.contains(g.pow_g(e)));
  }
}

TEST(ModpGroup, ExponentLaws) {
  const ModpGroup g = ModpGroup::test_512();
  Drbg rng(3);
  const BigInt a = g.random_exponent(rng);
  const BigInt b = g.random_exponent(rng);
  // (g^a)^b == (g^b)^a == g^{ab mod q}.
  EXPECT_EQ(g.pow(g.pow_g(a), b), g.pow(g.pow_g(b), a));
  EXPECT_EQ(g.pow(g.pow_g(a), b), g.pow_g(BigInt::mul_mod(a, b, g.q())));
}

TEST(ModpGroup, ContainsRejectsNonMembers) {
  const ModpGroup g = ModpGroup::test_512();
  EXPECT_FALSE(g.contains(BigInt{0}));
  EXPECT_FALSE(g.contains(g.p()));
  // A quadratic non-residue: g^odd * non-square... simplest: find x with
  // x^q != 1. p-1 is not in the QR subgroup (it has order 2).
  EXPECT_FALSE(g.contains(g.p() - BigInt{1}));
}

TEST(ModpGroup, RandomExponentInRange) {
  const ModpGroup g = ModpGroup::test_512();
  Drbg rng(4);
  for (int iter = 0; iter < 20; ++iter) {
    const BigInt e = g.random_exponent(rng);
    EXPECT_TRUE(e >= BigInt{1});
    EXPECT_TRUE(e < g.q());
  }
}

TEST(ModpGroup, GenerateSmallGroup) {
  Drbg rng(5);
  const ModpGroup g = ModpGroup::generate(rng, 96);
  EXPECT_EQ(g.p().bit_length(), 96u);
  EXPECT_TRUE(g.contains(g.g()));
  EXPECT_TRUE(is_probable_prime(g.p(), rng, 16));
  EXPECT_TRUE(is_probable_prime(g.q(), rng, 16));
}

TEST(ModpGroup, RejectsDegenerateParameters) {
  EXPECT_THROW(ModpGroup(BigInt{5}, BigInt{2}), CryptoError);
  // Seed 1 squares to 1: degenerate generator.
  EXPECT_THROW(ModpGroup(ModpGroup::test_512().p(), BigInt{1}), CryptoError);
}

}  // namespace
}  // namespace smatch
