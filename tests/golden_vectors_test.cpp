// Golden-vector regression tests: hardcoded wire frames and OPE
// ciphertexts pin the serialized formats to the bytes this repo shipped
// with. A diff here means an incompatible change — old uploads stop
// parsing, or previously stored OPE ciphertexts stop comparing against
// fresh ones — and must be paired with a wire-version bump, not waved
// through.
#include <gtest/gtest.h>

#include <string>

#include "common/bytes.hpp"
#include "core/key_server.hpp"
#include "core/messages.hpp"
#include "net/session.hpp"
#include "net/transport.hpp"
#include "ope/ope.hpp"
#include "store/format.hpp"

namespace smatch {
namespace {

// Every frame starts with the 3-byte header: magic "SM" (0x534D), then
// format version 1.
constexpr const char* kHeaderHex = "534d01";

// UploadMessage{user_id=7, key_index=00..1f, chain_cipher=
// 123456789012345678901234567890, chain_cipher_bits=128,
// auth_token=deadbeefcafef00d}.
constexpr const char* kUploadHex =
    "534d010000000700000020000102030405060708090a0b0c0d0e0f1011121314151617"
    "18191a1b1c1d1e1f00000080000000018ee90ff6c373e0ee4e3f0ad200000008deadbe"
    "efcafef00d";

// QueryRequest{query_id=0x0A0B0C0D, timestamp=0x1122334455667788, user_id=42}.
constexpr const char* kQueryHex = "534d010a0b0c0d11223344556677880000002a";

// KeyRequest{client_id=5, blinded=98765432109876543210}.
constexpr const char* kKeyRequestHex = "534d010000000500000009055aa54d38e5267eea";

Bytes counting_bytes(std::uint8_t xor_mask) {
  Bytes out;
  for (int i = 0; i < 32; ++i) out.push_back(static_cast<std::uint8_t>(i ^ xor_mask));
  return out;
}

UploadMessage golden_upload() {
  UploadMessage up;
  up.user_id = 7;
  up.key_index = counting_bytes(0);
  up.chain_cipher = BigInt::from_decimal("123456789012345678901234567890");
  up.chain_cipher_bits = 128;
  up.auth_token = from_hex("deadbeefcafef00d");
  return up;
}

TEST(GoldenVectors, UploadMessageFrameIsStable) {
  EXPECT_EQ(to_hex(golden_upload().serialize()), kUploadHex);
  EXPECT_EQ(std::string(kUploadHex).substr(0, 6), kHeaderHex);

  const StatusOr<UploadMessage> back = UploadMessage::parse(from_hex(kUploadHex));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->user_id, 7u);
  EXPECT_EQ(back->key_index, counting_bytes(0));
  EXPECT_EQ(back->chain_cipher,
            BigInt::from_decimal("123456789012345678901234567890"));
  EXPECT_EQ(back->chain_cipher_bits, 128u);
  EXPECT_EQ(back->auth_token, from_hex("deadbeefcafef00d"));
}

TEST(GoldenVectors, QueryRequestFrameIsStable) {
  QueryRequest q;
  q.query_id = 0x0A0B0C0D;
  q.timestamp = 0x1122334455667788ULL;
  q.user_id = 42;
  EXPECT_EQ(to_hex(q.serialize()), kQueryHex);
  EXPECT_EQ(std::string(kQueryHex).substr(0, 6), kHeaderHex);

  const StatusOr<QueryRequest> back = QueryRequest::parse(from_hex(kQueryHex));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->query_id, 0x0A0B0C0Du);
  EXPECT_EQ(back->timestamp, 0x1122334455667788ULL);
  EXPECT_EQ(back->user_id, 42u);
}

TEST(GoldenVectors, KeyRequestFrameIsStable) {
  KeyRequest kr;
  kr.client_id = 5;
  kr.blinded = BigInt::from_decimal("98765432109876543210");
  EXPECT_EQ(to_hex(kr.serialize()), kKeyRequestHex);
  EXPECT_EQ(std::string(kKeyRequestHex).substr(0, 6), kHeaderHex);

  const StatusOr<KeyRequest> back = KeyRequest::parse(from_hex(kKeyRequestHex));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->client_id, 5u);
  EXPECT_EQ(back->blinded, BigInt::from_decimal("98765432109876543210"));
}

// Transport frame wrapping the golden query: len(4, counts the rest) ||
// kind(1, kQuery) || payload || crc32(4, over kind || payload).
constexpr const char* kQueryFrameHex =
    "0000001801534d010a0b0c0d11223344556677880000002aeeed1f3d";

// Session request envelope carrying the golden query as its body:
// header || type=0 || request_id=0x1122334455667788 || var_bytes(body).
constexpr const char* kEnvelopeRequestHex =
    "534d0100112233445566778800000013534d010a0b0c0d11223344556677880000002a";

// Ok response envelope with an empty body for the same request id.
constexpr const char* kEnvelopeResponseHex = "534d010111223344556677880000000000";

// Envelope format v2 (type 2): the same request carrying the 16-byte
// trace context — trace_id=0x0123456789abcdef, span_id=0xfedcba9876543210
// — between request_id and the body. This is what SessionClient emits
// (ids drawn from the session DRBG); a zero context still serializes as
// the legacy type-0 vector above.
constexpr const char* kEnvelopeTracedRequestHex =
    "534d01021122334455667788"
    "0123456789abcdef"
    "fedcba9876543210"
    "00000013534d010a0b0c0d11223344556677880000002a";

TEST(GoldenVectors, TransportFrameIsStable) {
  const Bytes query = from_hex(kQueryHex);
  EXPECT_EQ(to_hex(encode_frame(MessageKind::kQuery, query)), kQueryFrameHex);

  FrameDecoder decoder;
  decoder.feed(from_hex(kQueryFrameHex));
  const StatusOr<std::optional<Frame>> frame = decoder.next();
  ASSERT_TRUE(frame.is_ok());
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->kind, MessageKind::kQuery);
  EXPECT_EQ((*frame)->payload, query);
}

TEST(GoldenVectors, SessionEnvelopesAreStable) {
  Envelope request;
  request.is_response = false;
  request.request_id = 0x1122334455667788ULL;
  request.body = from_hex(kQueryHex);
  EXPECT_EQ(to_hex(request.serialize()), kEnvelopeRequestHex);

  Envelope response;
  response.is_response = true;
  response.request_id = 0x1122334455667788ULL;
  response.status = StatusCode::kOk;
  EXPECT_EQ(to_hex(response.serialize()), kEnvelopeResponseHex);

  const StatusOr<Envelope> back = Envelope::parse(from_hex(kEnvelopeRequestHex));
  ASSERT_TRUE(back.is_ok());
  EXPECT_FALSE(back->is_response);
  EXPECT_EQ(back->request_id, 0x1122334455667788ULL);
  EXPECT_EQ(back->body, from_hex(kQueryHex));
  // The legacy vector carries no trace context.
  EXPECT_EQ(back->trace_id, 0u);
  EXPECT_EQ(back->span_id, 0u);
}

TEST(GoldenVectors, TracedSessionEnvelopeIsStable) {
  Envelope request;
  request.is_response = false;
  request.request_id = 0x1122334455667788ULL;
  request.trace_id = 0x0123456789abcdefULL;
  request.span_id = 0xfedcba9876543210ULL;
  request.body = from_hex(kQueryHex);
  EXPECT_EQ(to_hex(request.serialize()), kEnvelopeTracedRequestHex);

  const StatusOr<Envelope> back =
      Envelope::parse(from_hex(kEnvelopeTracedRequestHex));
  ASSERT_TRUE(back.is_ok());
  EXPECT_FALSE(back->is_response);
  EXPECT_EQ(back->request_id, 0x1122334455667788ULL);
  EXPECT_EQ(back->trace_id, 0x0123456789abcdefULL);
  EXPECT_EQ(back->span_id, 0xfedcba9876543210ULL);
  EXPECT_EQ(back->body, from_hex(kQueryHex));
}

TEST(GoldenVectors, EnvelopeByteMutationsNeverCrashTheParser) {
  // Deterministic fuzz over the new trace-context bytes (and the rest of
  // the frame): flipping any byte with any of several masks must yield a
  // clean parse or a typed error — never a throw, never a crash. A
  // mutation inside the body or the context can legally still parse; a
  // mutation of the header/type/length fields must fail typed.
  const Bytes golden = from_hex(kEnvelopeTracedRequestHex);
  for (const std::uint8_t mask : {0x01, 0x80, 0xff, 0x55}) {
    for (std::size_t i = 0; i < golden.size(); ++i) {
      Bytes mutated = golden;
      mutated[i] = static_cast<std::uint8_t>(mutated[i] ^ mask);
      const StatusOr<Envelope> out = Envelope::parse(mutated);
      if (!out.is_ok()) {
        EXPECT_TRUE(out.code() == StatusCode::kMalformedMessage ||
                    out.code() == StatusCode::kUnsupportedVersion)
            << "byte " << i << " mask " << int(mask);
      }
    }
  }
}

TEST(GoldenVectors, EveryPrefixOfEveryGoldenFrameIsRejected) {
  // Truncation sweep: a parser fed any strict prefix of a golden frame
  // must return kMalformedMessage — never parse, never throw.
  const auto sweep = [](const char* hex, auto parse) {
    const Bytes full = from_hex(hex);
    for (std::size_t len = 0; len < full.size(); ++len) {
      EXPECT_EQ(parse(BytesView(full).subspan(0, len)).code(),
                StatusCode::kMalformedMessage)
          << hex << " truncated to " << len;
    }
  };
  sweep(kUploadHex, [](BytesView d) { return UploadMessage::parse(d); });
  sweep(kQueryHex, [](BytesView d) { return QueryRequest::parse(d); });
  sweep(kKeyRequestHex, [](BytesView d) { return KeyRequest::parse(d); });
  sweep(kEnvelopeRequestHex, [](BytesView d) { return Envelope::parse(d); });
  sweep(kEnvelopeResponseHex, [](BytesView d) { return Envelope::parse(d); });
  sweep(kEnvelopeTracedRequestHex, [](BytesView d) { return Envelope::parse(d); });

  // At the framing layer a prefix is simply an incomplete frame: the
  // decoder asks for more bytes and produces nothing.
  const Bytes frame = from_hex(kQueryFrameHex);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    FrameDecoder decoder;
    decoder.feed(BytesView(frame).subspan(0, len));
    const StatusOr<std::optional<Frame>> out = decoder.next();
    ASSERT_TRUE(out.is_ok()) << len;
    EXPECT_FALSE(out->has_value()) << len;
  }
}

TEST(GoldenVectors, ChainCipherWidthOverflowIsRejected) {
  // chain_cipher_bits near UINT32_MAX once wrapped the `(bits + 7) / 8`
  // width arithmetic in 32-bit math down to zero bytes, letting an absurd
  // width "parse" against an empty cipher. The width cap closes that.
  Writer w;
  wire::write_header(w);
  w.u32(7);                     // user id
  w.var_bytes(Bytes(32, 0xaa)); // key index
  w.u32(0xffffffff);            // chain_cipher_bits: wraps to 6 in u32 math
  w.var_bytes(Bytes(8, 0xbb));  // auth token (would be read as the cipher)
  EXPECT_EQ(UploadMessage::parse(w.bytes()).code(), StatusCode::kMalformedMessage);

  // Just above the cap: same rejection, no allocation of the fake width.
  Writer above;
  wire::write_header(above);
  above.u32(7);
  above.var_bytes(Bytes(32, 0xaa));
  above.u32(kMaxChainCipherBits + 1);
  EXPECT_EQ(UploadMessage::parse(above.bytes()).code(),
            StatusCode::kMalformedMessage);

  // At the cap with the matching byte count: still parses.
  UploadMessage at_cap;
  at_cap.user_id = 7;
  at_cap.key_index = Bytes(32, 0xaa);
  at_cap.chain_cipher = BigInt{1};
  at_cap.chain_cipher_bits = kMaxChainCipherBits;
  at_cap.auth_token = Bytes(8, 0xbb);
  const StatusOr<UploadMessage> parsed = UploadMessage::parse(at_cap.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->chain_cipher, BigInt{1});
}

TEST(GoldenVectors, CorruptedHeaderIsRejectedNotParsed) {
  // Flip one magic bit / use an unknown version: both must fail cleanly.
  Bytes bad_magic = from_hex(kQueryHex);
  bad_magic[0] ^= 0x01;
  EXPECT_EQ(QueryRequest::parse(bad_magic).code(), StatusCode::kMalformedMessage);
  Bytes bad_version = from_hex(kQueryHex);
  bad_version[2] = 0x7F;
  EXPECT_EQ(QueryRequest::parse(bad_version).code(), StatusCode::kUnsupportedVersion);
}

TEST(GoldenVectors, WalRecordFrameIsStable) {
  // The durable store's on-disk framing (docs/PERSISTENCE.md). A diff
  // here means existing WAL/snapshot files stop replaying and must be
  // paired with a kStoreVersion bump.
  //
  // File header: magic "SM" || store version 1 || kind 'W' || shard 0.
  EXPECT_EQ(to_hex(store::encode_file_header(store::FileKind::kWal, 0)),
            "534d015700000000");

  // Record: len=0x58 (88 = 75-byte payload + 13) || type kUpload ||
  // seq=1 || payload (the golden upload wire — disk stores exactly what
  // the wire carries) || crc32(type||seq||payload).
  const std::string record_hex = std::string("00000058") + "01" +
                                 "0000000000000001" + kUploadHex + "c110b0f3";
  EXPECT_EQ(
      to_hex(store::encode_record(store::RecordType::kUpload, 1,
                                  golden_upload().serialize())),
      record_hex);

  // And it scans back intact. (RecordScanner views, never owns.)
  const Bytes record_bytes = from_hex(record_hex);
  store::RecordScanner scanner(record_bytes);
  const auto rec = scanner.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->type, store::RecordType::kUpload);
  EXPECT_EQ(rec->seq, 1u);
  EXPECT_EQ(to_hex(rec->payload), kUploadHex);
  EXPECT_FALSE(scanner.next().has_value());
  EXPECT_EQ(scanner.end(), store::ScanEnd::kClean);
}

TEST(GoldenVectors, OpeCiphertextsUnderFixedKeyAreStable) {
  // Key = i ^ 0xA0 for i in 0..31; 32-bit plaintexts, 64-bit ciphertexts.
  // The map is determined entirely by the key: these values pin the PRF
  // seed chain, the DRBG, and the hypergeometric sampler all at once —
  // and the cached walk must reproduce them exactly.
  struct Vector {
    const char* plaintext;
    const char* ciphertext;
  };
  const Vector vectors[] = {
      {"0", "5163295522"},
      {"1", "12112617724"},
      {"65536", "283155173383793"},
      {"305419896", "1311692065556414222"},
      {"4294967295", "18446744072061872825"},
  };
  for (const std::size_t cache_nodes : {std::size_t{0}, Ope::kDefaultCacheNodes}) {
    const Ope ope(counting_bytes(0xA0), 32, 64, cache_nodes);
    for (const auto& v : vectors) {
      const BigInt m = BigInt::from_decimal(v.plaintext);
      const BigInt c = BigInt::from_decimal(v.ciphertext);
      EXPECT_EQ(ope.encrypt(m), c) << "m=" << v.plaintext
                                   << " cache=" << cache_nodes;
      EXPECT_EQ(ope.decrypt(c), m);
    }
  }
}

}  // namespace
}  // namespace smatch
