// Verification-protocol tests: honest tokens verify, forged or
// wrong-key or wrong-identity tokens are rejected.
#include <gtest/gtest.h>

#include "core/auth.hpp"
#include "crypto/drbg.hpp"

namespace smatch {
namespace {

std::shared_ptr<const ModpGroup> test_group() {
  static const auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());
  return group;
}

TEST(AuthScheme, HonestTokenVerifies) {
  const AuthScheme auth(test_group());
  Drbg rng(1);
  const Bytes key = rng.bytes(32);
  const BigInt secret = auth.random_secret(rng);
  const Bytes token = auth.make_token(key, secret, 42, rng);
  EXPECT_EQ(token.size(), auth.token_size());
  EXPECT_TRUE(auth.verify_token(key, token, 42));
}

TEST(AuthScheme, WrongProfileKeyRejected) {
  // The core security property: a user whose profile key differs (i.e.,
  // whose profile is not close) learns nothing and cannot validate.
  const AuthScheme auth(test_group());
  Drbg rng(2);
  const Bytes key = rng.bytes(32);
  const Bytes other_key = rng.bytes(32);
  const Bytes token = auth.make_token(key, auth.random_secret(rng), 7, rng);
  EXPECT_FALSE(auth.verify_token(other_key, token, 7));
}

TEST(AuthScheme, WrongIdentityRejected) {
  // A malicious server claiming the token belongs to a different user is
  // caught: the tag binds g^{s * ID}.
  const AuthScheme auth(test_group());
  Drbg rng(3);
  const Bytes key = rng.bytes(32);
  const Bytes token = auth.make_token(key, auth.random_secret(rng), 1001, rng);
  EXPECT_TRUE(auth.verify_token(key, token, 1001));
  EXPECT_FALSE(auth.verify_token(key, token, 1002));
}

TEST(AuthScheme, ForgedTokenRejected) {
  const AuthScheme auth(test_group());
  Drbg rng(4);
  const Bytes key = rng.bytes(32);
  for (int iter = 0; iter < 10; ++iter) {
    const Bytes forged = rng.bytes(auth.token_size());
    EXPECT_FALSE(auth.verify_token(key, forged, 5));
  }
}

TEST(AuthScheme, BitFlippedTokenRejected) {
  const AuthScheme auth(test_group());
  Drbg rng(5);
  const Bytes key = rng.bytes(32);
  const Bytes token = auth.make_token(key, auth.random_secret(rng), 9, rng);
  for (std::size_t pos : {std::size_t{0}, token.size() / 2, token.size() - 1}) {
    Bytes tampered = token;
    tampered[pos] ^= 0x01;
    EXPECT_FALSE(auth.verify_token(key, tampered, 9)) << "pos=" << pos;
  }
}

TEST(AuthScheme, TruncatedTokenRejected) {
  const AuthScheme auth(test_group());
  Drbg rng(6);
  const Bytes key = rng.bytes(32);
  const Bytes token = auth.make_token(key, auth.random_secret(rng), 9, rng);
  const Bytes truncated(token.begin(), token.end() - 1);
  EXPECT_FALSE(auth.verify_token(key, truncated, 9));
  EXPECT_FALSE(auth.verify_token(key, Bytes{}, 9));
}

TEST(AuthScheme, TokensAreRandomized) {
  // Fresh IV per token: re-issuing does not produce linkable ciphertexts.
  const AuthScheme auth(test_group());
  Drbg rng(7);
  const Bytes key = rng.bytes(32);
  const BigInt secret = auth.random_secret(rng);
  const Bytes t1 = auth.make_token(key, secret, 3, rng);
  const Bytes t2 = auth.make_token(key, secret, 3, rng);
  EXPECT_NE(t1, t2);
  EXPECT_TRUE(auth.verify_token(key, t1, 3));
  EXPECT_TRUE(auth.verify_token(key, t2, 3));
}

TEST(AuthScheme, SharedKeyGroupMembersCanVerifyEachOther) {
  // Users B and C share a profile key; both can verify each other's
  // tokens, while A (different key) can verify neither (the paper's
  // Section VI example).
  const AuthScheme auth(test_group());
  Drbg rng(8);
  const Bytes kp1 = rng.bytes(32);  // B and C
  const Bytes kp2 = rng.bytes(32);  // A
  const Bytes token_b = auth.make_token(kp1, auth.random_secret(rng), 2, rng);
  const Bytes token_c = auth.make_token(kp1, auth.random_secret(rng), 3, rng);
  const Bytes token_a = auth.make_token(kp2, auth.random_secret(rng), 1, rng);
  EXPECT_TRUE(auth.verify_token(kp1, token_c, 3));   // B verifies C
  EXPECT_TRUE(auth.verify_token(kp1, token_b, 2));   // C verifies B
  EXPECT_FALSE(auth.verify_token(kp1, token_a, 1));  // B cannot verify A
  EXPECT_FALSE(auth.verify_token(kp2, token_b, 2));  // A cannot verify B
}

TEST(AuthScheme, WorksWithRfc3526Group) {
  const AuthScheme auth(std::make_shared<const ModpGroup>(ModpGroup::rfc3526_2048()));
  Drbg rng(9);
  const Bytes key = rng.bytes(32);
  const Bytes token = auth.make_token(key, auth.random_secret(rng), 77, rng);
  EXPECT_EQ(token.size(), 16 + 256 + 32);
  EXPECT_TRUE(auth.verify_token(key, token, 77));
  EXPECT_FALSE(auth.verify_token(key, token, 78));
}

}  // namespace
}  // namespace smatch
