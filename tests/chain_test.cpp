// Attribute-chaining tests: keyed permutation stability, assembly and
// disassembly round trips, and the chain-order comparability invariant.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/chain.hpp"
#include "crypto/drbg.hpp"

namespace smatch {
namespace {

Bytes key_a() { return to_bytes("profile-key-A-0123456789abcdef"); }
Bytes key_b() { return to_bytes("profile-key-B-0123456789abcdef"); }

TEST(AttributeChain, PermutationIsKeyedAndStable) {
  const AttributeChain chain(8, 16);
  const auto p1 = chain.permutation(key_a());
  const auto p2 = chain.permutation(key_a());
  const auto p3 = chain.permutation(key_b());
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, p3);
  // Must be a permutation of 0..7.
  std::vector<bool> seen(8, false);
  for (std::size_t i : p1) {
    ASSERT_LT(i, 8u);
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(AttributeChain, AssembleDisassembleRoundTrip) {
  const AttributeChain chain(5, 32);
  Drbg rng(1);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<BigInt> mapped;
    for (int i = 0; i < 5; ++i) {
      mapped.push_back(BigInt::random_below(rng, BigInt{1} << 32));
    }
    const BigInt assembled = chain.assemble(mapped, key_a());
    EXPECT_LE(assembled.bit_length(), chain.chain_bits());
    EXPECT_EQ(chain.disassemble(assembled, key_a()), mapped);
  }
}

TEST(AttributeChain, DifferentKeysChainDifferently) {
  const AttributeChain chain(6, 16);
  Drbg rng(2);
  std::vector<BigInt> mapped;
  for (int i = 0; i < 6; ++i) mapped.push_back(BigInt{rng.below(1u << 16)});
  // With overwhelming probability the two keyed orders differ, so the
  // assembled integers differ.
  EXPECT_NE(chain.assemble(mapped, key_a()), chain.assemble(mapped, key_b()));
}

TEST(AttributeChain, WrongKeyDisassemblyScrambles) {
  const AttributeChain chain(6, 16);
  Drbg rng(3);
  std::vector<BigInt> mapped;
  for (int i = 0; i < 6; ++i) mapped.push_back(BigInt{rng.below(1u << 16)});
  const BigInt assembled = chain.assemble(mapped, key_a());
  EXPECT_NE(chain.disassemble(assembled, key_b()), mapped);
}

TEST(AttributeChain, SharedKeyChainsAreOrderComparable) {
  // Two users under the same key: if every mapped attribute of u is <=
  // that of v, then chain(u) <= chain(v) (the high-order position is the
  // same attribute for both).
  const AttributeChain chain(4, 16);
  Drbg rng(4);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<BigInt> lo, hi;
    for (int i = 0; i < 4; ++i) {
      const std::uint64_t base = rng.below(1u << 15);
      lo.push_back(BigInt{base});
      hi.push_back(BigInt{base + rng.below(1u << 15)});
    }
    EXPECT_TRUE(chain.assemble(lo, key_a()) <= chain.assemble(hi, key_a()));
  }
}

TEST(AttributeChain, SingleAttribute) {
  const AttributeChain chain(1, 64);
  const std::vector<BigInt> mapped = {BigInt{12345}};
  EXPECT_EQ(chain.disassemble(chain.assemble(mapped, key_a()), key_a()), mapped);
}

TEST(AttributeChain, RejectsBadInput) {
  const AttributeChain chain(3, 8);
  EXPECT_THROW((void)chain.assemble({BigInt{1}}, key_a()), Error);  // arity
  EXPECT_THROW((void)chain.assemble({BigInt{1}, BigInt{2}, BigInt{256}}, key_a()),
               Error);  // width overflow
  EXPECT_THROW((void)chain.disassemble(BigInt{1} << 25, key_a()), Error);
  EXPECT_THROW(AttributeChain(0, 8), Error);
  EXPECT_THROW(AttributeChain(3, 0), Error);
}

}  // namespace
}  // namespace smatch
