// Entropy-increase (big-jump mapping) tests: order preservation across
// slots, uniformity of the mapped distribution, entropy accounting, and
// the landmark-flattening property.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/entropy_map.hpp"
#include "crypto/drbg.hpp"
#include "datasets/stats.hpp"

namespace smatch {
namespace {

TEST(EntropyMapper, MappedValuesStayInOwnSlot) {
  const EntropyMapper mapper({0.3, 0.4, 0.2, 0.1}, 64);
  Drbg rng(1);
  for (AttrValue v = 0; v < 4; ++v) {
    for (int iter = 0; iter < 50; ++iter) {
      const BigInt mapped = mapper.map(v, rng);
      EXPECT_TRUE(mapped >= mapper.slot_base(v));
      EXPECT_TRUE(mapped < mapper.slot_base(v) + mapper.subrange_size(v));
      EXPECT_EQ(mapper.unmap(mapped), v);
    }
  }
}

TEST(EntropyMapper, BigJumpPreservesValueOrder) {
  const EntropyMapper mapper({0.25, 0.25, 0.25, 0.25}, 32);
  Drbg rng(2);
  // Any mapped image of value i is below any image of value j > i.
  for (AttrValue lo = 0; lo < 3; ++lo) {
    for (int iter = 0; iter < 30; ++iter) {
      const BigInt a = mapper.map(lo, rng);
      const BigInt b = mapper.map(lo + 1, rng);
      EXPECT_TRUE(a < b);
    }
  }
}

TEST(EntropyMapper, SubrangeSizesProportionalToProbability) {
  const EntropyMapper mapper({0.5, 0.25, 0.25}, 32);
  // R_0 should be about twice R_1 == R_2.
  const double r0 = static_cast<double>(mapper.subrange_size(0).to_long_double());
  const double r1 = static_cast<double>(mapper.subrange_size(1).to_long_double());
  const double r2 = static_cast<double>(mapper.subrange_size(2).to_long_double());
  EXPECT_NEAR(r0 / r1, 2.0, 0.01);
  EXPECT_NEAR(r1 / r2, 1.0, 0.01);
}

TEST(EntropyMapper, MappedEntropyIsNearLgDelta) {
  // With R_j = p_j * Delta, the mapped distribution is uniform over Delta
  // strings: entropy = lg(Delta) = k - lg(n) - 1.
  const std::size_t k = 64;
  const EntropyMapper mapper({0.3, 0.4, 0.2, 0.1}, k);
  const double expected = static_cast<double>(k) - std::log2(4.0) - 1.0;
  EXPECT_NEAR(mapper.mapped_entropy(), expected, 0.01);
}

TEST(EntropyMapper, EntropyIncreasesWithPlaintextSize) {
  const std::vector<double> probs = {0.85, 0.05, 0.05, 0.05};
  double prev = 0.0;
  for (std::size_t k : {16u, 32u, 64u, 128u, 256u}) {
    const EntropyMapper mapper(probs, k);
    const double h = mapper.mapped_entropy();
    EXPECT_GT(h, prev);
    EXPECT_LT(h, static_cast<double>(k));  // below perfect entropy
    prev = h;
  }
}

TEST(EntropyMapper, FlattensLandmarkDistribution) {
  // A tau=0.85 landmark value becomes statistically invisible after
  // mapping: bucket the mapped strings by slot-free hashing into 16 bins
  // and check no bin dominates.
  const std::vector<double> probs = {0.85, 0.05, 0.05, 0.05};
  const EntropyMapper mapper(probs, 32);
  Drbg rng(3);
  std::vector<std::uint64_t> mapped_samples;
  for (int iter = 0; iter < 4000; ++iter) {
    // Draw a value from the skewed distribution, then map it.
    const double u = static_cast<double>(rng.u64() >> 11) * 0x1p-53;
    AttrValue v = u < 0.85 ? 0 : (u < 0.90 ? 1 : (u < 0.95 ? 2 : 3));
    mapped_samples.push_back(mapper.map(v, rng).to_u64());
  }
  // The raw value distribution has entropy ~1.0 bits; the mapped samples,
  // viewed at any fixed granularity, must look much flatter. Quantize the
  // mapped space into 64 equal bins and compare entropies.
  std::vector<std::uint64_t> bins;
  bins.reserve(mapped_samples.size());
  for (std::uint64_t m : mapped_samples) bins.push_back(m >> 26);  // 2^32/2^26 = 64 bins
  std::map<std::uint64_t, std::size_t> counts;
  for (std::uint64_t b : bins) ++counts[b];
  double max_freq = 0.0;
  for (const auto& [bin, count] : counts) {
    max_freq = std::max(max_freq, static_cast<double>(count) / static_cast<double>(bins.size()));
  }
  // The raw distribution's landmark carried 85% of the mass; after the
  // big-jump mapping no fixed-granularity bucket carries more than ~1/4.
  EXPECT_LT(max_freq, 0.25);
  EXPECT_GT(sample_entropy(bins), 3.0);
}

TEST(EntropyMapper, SameValueMapsToDifferentStrings) {
  // The one-to-N property: repeated uploads of the same value produce
  // (almost surely) distinct mapped strings.
  const EntropyMapper mapper({0.5, 0.5}, 64);
  Drbg rng(4);
  const BigInt a = mapper.map(0, rng);
  const BigInt b = mapper.map(0, rng);
  EXPECT_NE(a, b);
  EXPECT_EQ(mapper.unmap(a), mapper.unmap(b));
}

TEST(EntropyMapper, RejectsBadParameters) {
  EXPECT_THROW(EntropyMapper({1.0}, 64), Error);            // 1 value
  EXPECT_THROW(EntropyMapper({0.5, 0.5}, 2), Error);        // k too small
  EXPECT_THROW(EntropyMapper({0.5, 1.5}, 64), Error);       // bad probability
  Drbg rng(9);
  EXPECT_THROW((void)EntropyMapper({0.5, 0.5}, 64).map(2, rng), Error);  // value out of range
}

TEST(EntropyMapper, UnmapRejectsOutOfSpace) {
  const EntropyMapper mapper({0.5, 0.5}, 16);
  EXPECT_THROW((void)mapper.unmap(BigInt{1} << 17), Error);
  EXPECT_THROW((void)mapper.unmap(BigInt{-1}), Error);
}

}  // namespace
}  // namespace smatch
