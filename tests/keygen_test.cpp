// Fuzzy key generation tests: equal keys for close profiles, distinct
// keys for distant ones, determinism, OPRF integration, and the PR-KK
// structural property (key leakage confined to the key group).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/keygen.hpp"
#include "crypto/drbg.hpp"
#include "crypto/sha2.hpp"

namespace smatch {
namespace {

const RsaOprfServer& key_server() {
  static const RsaOprfServer server = [] {
    Drbg rng(555);
    return RsaOprfServer(RsaKeyPair::generate(rng, 512));
  }();
  return server;
}

SchemeParams params_with_theta(std::uint32_t theta) {
  SchemeParams p;
  p.rs_threshold = theta;
  return p;
}

TEST(FuzzyKeyGen, IdenticalProfilesDeriveIdenticalKeys) {
  const FuzzyKeyGen kg(params_with_theta(8), 6);
  Drbg rng(1);
  const Profile a = {10, 20, 30, 40, 50, 60};
  const ProfileKey k1 = kg.derive(a, key_server(), rng);
  const ProfileKey k2 = kg.derive(a, key_server(), rng);
  EXPECT_EQ(k1.key, k2.key);
  EXPECT_EQ(k1.index, k2.index);
  EXPECT_EQ(k1.key.size(), 32u);
  EXPECT_NE(k1.key, k1.index);
}

TEST(FuzzyKeyGen, CloseProfilesShareKeys) {
  // Within a quantization cell (width quant_width, round-to-nearest),
  // small perturbations leave the fuzzy vector unchanged.
  const FuzzyKeyGen kg(params_with_theta(8), 6);  // quant_width defaults to 8
  Drbg rng(2);
  const Profile center = {80, 160, 240, 320, 400, 480};  // multiples of the cell width
  const ProfileKey kc = kg.derive(center, key_server(), rng);
  for (int trial = 0; trial < 10; ++trial) {
    Profile jittered = center;
    for (auto& v : jittered) {
      v = v - 3 + static_cast<AttrValue>(rng.below(4));  // stays inside the cell
    }
    const ProfileKey kj = kg.derive(jittered, key_server(), rng);
    EXPECT_EQ(kc.key, kj.key) << "trial " << trial;
  }
}

TEST(FuzzyKeyGen, DistantProfilesGetDifferentKeys) {
  const FuzzyKeyGen kg(params_with_theta(8), 6);
  Drbg rng(3);
  const Profile a = {10, 20, 30, 40, 50, 60};
  const Profile b = {100, 200, 300, 400, 500, 600};
  EXPECT_NE(kg.derive(a, key_server(), rng).key, kg.derive(b, key_server(), rng).key);
}

TEST(FuzzyKeyGen, ThetaChangesTheKey) {
  // The threshold is bound into the key material: different deployments
  // never collide.
  Drbg rng(4);
  const Profile a = {10, 20, 30, 40, 50, 60};
  const FuzzyKeyGen kg5(params_with_theta(5), 6);
  const FuzzyKeyGen kg9(params_with_theta(9), 6);
  EXPECT_NE(kg5.derive(a, key_server(), rng).key, kg9.derive(a, key_server(), rng).key);
}

TEST(FuzzyKeyGen, QuantizeRoundsToNearest) {
  const FuzzyKeyGen kg(params_with_theta(8), 3);  // quant_width 8
  const auto s = kg.quantize({0, 3, 4});
  EXPECT_EQ(s[0], 0);
  EXPECT_EQ(s[1], 0);  // 3 + 4 = 7 < 8
  EXPECT_EQ(s[2], 1);  // 4 + 4 = 8 -> cell 1
}

TEST(FuzzyKeyGen, QuantWidthChangesTheClustering) {
  SchemeParams coarse = params_with_theta(8);
  coarse.quant_width = 32;
  SchemeParams fine = params_with_theta(8);
  fine.quant_width = 2;
  const FuzzyKeyGen kg_coarse(coarse, 2);
  const FuzzyKeyGen kg_fine(fine, 2);
  // 5 and 14 share a width-32 cell (round-to-nearest: both land in cell 0)
  // but not a width-2 cell.
  EXPECT_EQ(kg_coarse.key_material({5, 5}), kg_coarse.key_material({14, 14}));
  EXPECT_NE(kg_fine.key_material({5, 5}), kg_fine.key_material({14, 14}));
}

TEST(FuzzyKeyGen, CodeParametersDeriveFromThetaAndArity) {
  for (std::size_t d : {3u, 6u, 17u}) {
    for (std::uint32_t theta : {5u, 8u, 10u}) {
      const FuzzyKeyGen kg(params_with_theta(theta), d);
      EXPECT_EQ(kg.code().n(), d * kg.rep());
      EXPECT_EQ(kg.code().n() - kg.code().k(), 2 * theta);
      EXPECT_GE(kg.code().k(), 2u);
    }
  }
}

TEST(FuzzyKeyGen, FuzzyVectorIsDeterministic) {
  const FuzzyKeyGen kg(params_with_theta(7), 6);
  const Profile a = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(kg.fuzzy_vector(a), kg.fuzzy_vector(a));
  EXPECT_EQ(kg.key_material(a), kg.key_material(a));
}

TEST(FuzzyKeyGen, KeyIndexIsHashOfKey) {
  Drbg rng(5);
  const FuzzyKeyGen kg(params_with_theta(8), 6);
  const ProfileKey pk = kg.derive({1, 2, 3, 4, 5, 6}, key_server(), rng);
  // index = h(K_up): recomputable from the key alone, which is what lets
  // the server group by index without learning the key.
  EXPECT_EQ(pk.index, FuzzyKeyGen::from_oprf_output(pk.key).index);
}

TEST(FuzzyKeyGen, RejectsArityMismatch) {
  const FuzzyKeyGen kg(params_with_theta(8), 6);
  EXPECT_THROW((void)kg.quantize({1, 2, 3}), Error);
}

TEST(FuzzyKeyGen, OprfPreventsOfflineDerivation) {
  // Without the key server, key material alone must not determine the
  // final key: the OPRF output differs from any public hash of it.
  Drbg rng(6);
  const FuzzyKeyGen kg(params_with_theta(8), 6);
  const Profile a = {1, 2, 3, 4, 5, 6};
  const Bytes material = kg.key_material(a);
  const ProfileKey pk = kg.derive(a, key_server(), rng);
  EXPECT_NE(pk.key, material);
  EXPECT_NE(pk.key, Sha256::hash(material));
}

}  // namespace
}  // namespace smatch
