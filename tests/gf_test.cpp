// Galois-field and Reed-Solomon tests: field axioms, polynomial algebra,
// and error-correction properties up to (and beyond) capacity.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "crypto/drbg.hpp"
#include "gf/galois.hpp"
#include "gf/reed_solomon.hpp"

namespace smatch {
namespace {

using Elem = GaloisField::Elem;

class GaloisFieldAxioms : public ::testing::TestWithParam<unsigned> {};

TEST_P(GaloisFieldAxioms, MulDivInverse) {
  const GaloisField gf(GetParam());
  Drbg rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    const Elem a = static_cast<Elem>(rng.below(gf.size() - 1) + 1);
    const Elem b = static_cast<Elem>(rng.below(gf.size() - 1) + 1);
    EXPECT_EQ(gf.div(gf.mul(a, b), b), a);
    EXPECT_EQ(gf.mul(a, gf.inv(a)), 1);
  }
}

TEST_P(GaloisFieldAxioms, Distributivity) {
  const GaloisField gf(GetParam());
  Drbg rng(GetParam() + 100);
  for (int iter = 0; iter < 200; ++iter) {
    const Elem a = static_cast<Elem>(rng.below(gf.size()));
    const Elem b = static_cast<Elem>(rng.below(gf.size()));
    const Elem c = static_cast<Elem>(rng.below(gf.size()));
    EXPECT_EQ(gf.mul(a, GaloisField::add(b, c)),
              GaloisField::add(gf.mul(a, b), gf.mul(a, c)));
  }
}

TEST_P(GaloisFieldAxioms, AlphaGeneratesWholeGroup) {
  const GaloisField gf(GetParam());
  // alpha^i for i in [0, order) must enumerate every non-zero element.
  std::vector<bool> seen(gf.size(), false);
  for (std::uint32_t i = 0; i < gf.order(); ++i) {
    const Elem e = gf.alpha_pow(static_cast<std::int64_t>(i));
    EXPECT_FALSE(seen[e]) << "repeat at i=" << i;
    seen[e] = true;
  }
  EXPECT_FALSE(seen[0]);
}

TEST_P(GaloisFieldAxioms, LogExpRoundTrip) {
  const GaloisField gf(GetParam());
  Drbg rng(GetParam() + 200);
  for (int iter = 0; iter < 100; ++iter) {
    const Elem a = static_cast<Elem>(rng.below(gf.size() - 1) + 1);
    EXPECT_EQ(gf.alpha_pow(static_cast<std::int64_t>(gf.log(a))), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Fields, GaloisFieldAxioms, ::testing::Values(3u, 4u, 8u, 10u, 12u, 16u));

TEST(GaloisField, ZeroHandling) {
  const GaloisField gf(8);
  EXPECT_EQ(gf.mul(0, 123), 0);
  EXPECT_EQ(gf.div(0, 5), 0);
  EXPECT_THROW((void)gf.div(1, 0), CryptoError);
  EXPECT_THROW((void)gf.inv(0), CryptoError);
  EXPECT_THROW((void)gf.log(0), CryptoError);
}

TEST(GaloisField, PowLaws) {
  const GaloisField gf(10);
  const Elem a = 37;
  EXPECT_EQ(gf.pow(a, 0), 1);
  EXPECT_EQ(gf.pow(a, 1), a);
  EXPECT_EQ(gf.pow(a, gf.order()), a == 0 ? 0 : 1 * gf.pow(a, gf.order()));
  EXPECT_EQ(gf.pow(a, 5), gf.mul(gf.pow(a, 2), gf.pow(a, 3)));
}

TEST(GaloisField, RejectsBadParameters) {
  EXPECT_THROW(GaloisField(2), CryptoError);
  EXPECT_THROW(GaloisField(17), CryptoError);
  // x^4 + x^3 + x^2 + x + 1 is irreducible but NOT primitive over GF(2).
  EXPECT_THROW(GaloisField(4, 0x1f), CryptoError);
  // Wrong degree.
  EXPECT_THROW(GaloisField(4, 0xb), CryptoError);
}

TEST(GfPoly, EvalKnown) {
  const GaloisField gf(8);
  // p(x) = 1 + x: p(alpha) = 1 ^ alpha.
  const gfpoly::Poly p = {1, 1};
  const Elem alpha = gf.alpha_pow(1);
  EXPECT_EQ(gfpoly::eval(gf, p, alpha), GaloisField::add(1, alpha));
}

TEST(GfPoly, MulModConsistency) {
  const GaloisField gf(8);
  Drbg rng(77);
  for (int iter = 0; iter < 50; ++iter) {
    gfpoly::Poly a(5), b(3);
    for (auto& c : a) c = static_cast<Elem>(rng.below(256));
    for (auto& c : b) c = static_cast<Elem>(rng.below(255) + 1);
    gfpoly::trim(a);
    // (a mod b) == a - q*b, so a mod b evaluated anywhere b's roots lie
    // must match a. Check via: deg(a mod b) < deg(b).
    const gfpoly::Poly r = gfpoly::mod(gf, a, b);
    if (!r.empty()) EXPECT_LT(gfpoly::degree(r), gfpoly::degree(b));
  }
}

TEST(GfPoly, DerivativeChar2) {
  // d/dx (c0 + c1 x + c2 x^2 + c3 x^3) = c1 + 3 c3 x^2 = c1 + c3 x^2.
  const gfpoly::Poly p = {7, 5, 9, 3};
  const gfpoly::Poly d = gfpoly::derivative(p);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0], 5);
  EXPECT_EQ(d[1], 0);
  EXPECT_EQ(d[2], 3);
}

struct RsParam {
  unsigned m;
  std::size_t n;
  std::size_t k;
};

class ReedSolomonProperty : public ::testing::TestWithParam<RsParam> {};

TEST_P(ReedSolomonProperty, EncodeProducesCodeword) {
  const auto [m, n, k] = GetParam();
  const ReedSolomon rs(GaloisField(m), n, k);
  Drbg rng(m * 1000 + n);
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<Elem> msg(k);
    for (auto& s : msg) s = static_cast<Elem>(rng.below(1u << m));
    const auto cw = rs.encode(msg);
    EXPECT_TRUE(rs.is_codeword(cw));
    // Systematic: message occupies the top positions.
    for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(cw[n - k + i], msg[i]);
  }
}

TEST_P(ReedSolomonProperty, CorrectsUpToCapacity) {
  const auto [m, n, k] = GetParam();
  const ReedSolomon rs(GaloisField(m), n, k);
  Drbg rng(m * 2000 + n);
  for (std::size_t errors = 0; errors <= rs.t(); ++errors) {
    std::vector<Elem> msg(k);
    for (auto& s : msg) s = static_cast<Elem>(rng.below(1u << m));
    auto word = rs.encode(msg);

    // Inject `errors` distinct corrupted positions.
    std::vector<std::size_t> positions;
    while (positions.size() < errors) {
      const std::size_t pos = static_cast<std::size_t>(rng.below(n));
      if (std::find(positions.begin(), positions.end(), pos) == positions.end()) {
        positions.push_back(pos);
      }
    }
    for (std::size_t pos : positions) {
      const Elem delta = static_cast<Elem>(rng.below((1u << m) - 1) + 1);
      word[pos] = GaloisField::add(word[pos], delta);
    }

    const auto decoded = rs.decode(word);
    EXPECT_EQ(decoded.message, msg) << "errors=" << errors;
    EXPECT_EQ(decoded.error_positions.size(), errors);
  }
}

TEST_P(ReedSolomonProperty, RejectsOrMisdecodesBeyondCapacity) {
  const auto [m, n, k] = GetParam();
  const ReedSolomon rs(GaloisField(m), n, k);
  Drbg rng(m * 3000 + n);
  std::vector<Elem> msg(k);
  for (auto& s : msg) s = static_cast<Elem>(rng.below(1u << m));
  auto word = rs.encode(msg);
  // Corrupt t+1 positions: decoding must either throw or return a
  // *different* valid codeword — never silently return a non-codeword.
  for (std::size_t pos = 0; pos <= rs.t(); ++pos) {
    word[pos] = GaloisField::add(word[pos], 1);
  }
  try {
    const auto decoded = rs.decode(word);
    EXPECT_TRUE(rs.is_codeword(decoded.codeword));
  } catch (const DecodeError&) {
    SUCCEED();
  }
}

INSTANTIATE_TEST_SUITE_P(Codes, ReedSolomonProperty,
                         ::testing::Values(RsParam{8, 15, 9}, RsParam{8, 255, 223},
                                           RsParam{10, 30, 10}, RsParam{10, 60, 40},
                                           RsParam{4, 15, 7}, RsParam{10, 18, 2}));

TEST(ReedSolomon, RejectsBadParameters) {
  const GaloisField gf(8);
  EXPECT_THROW(ReedSolomon(gf, 10, 10), CryptoError);   // k == n
  EXPECT_THROW(ReedSolomon(gf, 300, 10), CryptoError);  // n > 2^m - 1
  EXPECT_THROW(ReedSolomon(gf, 10, 5), CryptoError);    // n - k odd
}

TEST(ReedSolomon, RejectsOutOfFieldSymbols) {
  const ReedSolomon rs(GaloisField(4), 15, 7);
  std::vector<Elem> msg(7, 16);  // 16 >= 2^4
  EXPECT_THROW((void)rs.encode(msg), CryptoError);
  std::vector<Elem> word(15, 16);
  EXPECT_THROW((void)rs.decode(word), CryptoError);
}

TEST(ReedSolomon, DecodeIsDeterministic) {
  const ReedSolomon rs(GaloisField(10), 30, 10);
  std::vector<Elem> word(30);
  Drbg rng(4242);
  for (auto& s : word) s = static_cast<Elem>(rng.below(1024));
  // Same input (even a random word) gives the same result every time —
  // the property the fuzzy keygen fallback depends on.
  auto run = [&rs, &word]() -> std::vector<Elem> {
    try {
      return rs.decode(word).codeword;
    } catch (const DecodeError&) {
      return word;
    }
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace smatch
