// RSA and RSA-OPRF tests: trapdoor correctness, CRT, protocol
// equivalence with direct evaluation, obliviousness sanity, and
// misbehaving-server detection.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "crypto/drbg.hpp"
#include "oprf/rsa.hpp"
#include "oprf/rsa_oprf.hpp"

namespace smatch {
namespace {

// Key generation is the slow part; share one key pair per suite.
const RsaKeyPair& shared_rsa() {
  static const RsaKeyPair kp = [] {
    Drbg rng(1001);
    return RsaKeyPair::generate(rng, 512);
  }();
  return kp;
}

TEST(Rsa, PublicPrivateRoundTrip) {
  const auto& kp = shared_rsa();
  Drbg rng(2);
  for (int iter = 0; iter < 10; ++iter) {
    const BigInt m = BigInt::random_below(rng, kp.n());
    EXPECT_EQ(kp.public_op(kp.private_op(m)), m);
    EXPECT_EQ(kp.private_op(kp.public_op(m)), m);
  }
}

TEST(Rsa, CrtMatchesPlainExponentiation) {
  const auto& kp = shared_rsa();
  Drbg rng(3);
  for (int iter = 0; iter < 5; ++iter) {
    const BigInt m = BigInt::random_below(rng, kp.n());
    EXPECT_EQ(kp.private_op(m), m.pow_mod(kp.d(), kp.n()));
  }
}

TEST(Rsa, ModulusHasRequestedSize) {
  Drbg rng(5);
  const RsaKeyPair kp = RsaKeyPair::generate(rng, 256);
  EXPECT_EQ(kp.n().bit_length(), 256u);
  EXPECT_EQ(kp.e().to_decimal(), "65537");
}

TEST(Rsa, RejectsTinyModulus) {
  Drbg rng(7);
  EXPECT_THROW((void)RsaKeyPair::generate(rng, 32), CryptoError);
}

TEST(OprfFdh, InRangeAndDeterministic) {
  const auto& kp = shared_rsa();
  const BigInt h1 = oprf_fdh(to_bytes("hello"), kp.n());
  const BigInt h2 = oprf_fdh(to_bytes("hello"), kp.n());
  const BigInt h3 = oprf_fdh(to_bytes("hellp"), kp.n());
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
  EXPECT_TRUE(h1 > BigInt{1});
  EXPECT_TRUE(h1 < kp.n());
}

TEST(RsaOprf, ProtocolMatchesDirectEvaluation) {
  const RsaOprfServer server(shared_rsa());
  Drbg rng(11);
  for (const char* input : {"profile-a", "profile-b", ""}) {
    RsaOprfClient client(server.public_key(), to_bytes(input), rng);
    const OprfResponse resp = server.evaluate(client.request());
    EXPECT_EQ(client.finalize(resp), server.evaluate_direct(to_bytes(input))) << input;
  }
}

TEST(RsaOprf, SameInputDifferentBlindingSameOutput) {
  const RsaOprfServer server(shared_rsa());
  Drbg rng1(13), rng2(14);
  RsaOprfClient c1(server.public_key(), to_bytes("same"), rng1);
  RsaOprfClient c2(server.public_key(), to_bytes("same"), rng2);
  // Different blinding: requests differ (what the server sees is fresh)...
  EXPECT_NE(c1.request().blinded, c2.request().blinded);
  // ...but outputs agree (it is a *function* of the input).
  EXPECT_EQ(c1.finalize(server.evaluate(c1.request())),
            c2.finalize(server.evaluate(c2.request())));
}

TEST(RsaOprf, OutputsAre32Bytes) {
  const RsaOprfServer server(shared_rsa());
  Drbg rng(15);
  RsaOprfClient c(server.public_key(), to_bytes("x"), rng);
  EXPECT_EQ(c.finalize(server.evaluate(c.request())).size(), 32u);
}

TEST(RsaOprf, DetectsCheatingServer) {
  const RsaOprfServer server(shared_rsa());
  Drbg rng(17);
  RsaOprfClient c(server.public_key(), to_bytes("victim"), rng);
  OprfResponse forged = server.evaluate(c.request());
  forged.evaluated += BigInt{1};  // server returns a wrong evaluation
  EXPECT_THROW((void)c.finalize(forged), CryptoError);
}

TEST(RsaOprf, RejectsOutOfRangeElements) {
  const RsaOprfServer server(shared_rsa());
  EXPECT_THROW((void)server.evaluate({BigInt{0}}), CryptoError);
  EXPECT_THROW((void)server.evaluate({shared_rsa().n()}), CryptoError);
  Drbg rng(19);
  RsaOprfClient c(server.public_key(), to_bytes("x"), rng);
  EXPECT_THROW((void)c.finalize({BigInt{0}}), CryptoError);
}

TEST(RsaOprf, BlindedRequestLooksIndependentOfInput) {
  // Obliviousness smoke test: with fresh blinding, requests for two fixed
  // inputs are both "random-looking" mod n; check they differ across runs
  // and do not equal the unblinded FDH value.
  const RsaOprfServer server(shared_rsa());
  Drbg rng(21);
  const Bytes input = to_bytes("low-entropy-profile");
  const BigInt fdh = oprf_fdh(input, server.public_key().n);
  for (int iter = 0; iter < 5; ++iter) {
    RsaOprfClient c(server.public_key(), input, rng);
    EXPECT_NE(c.request().blinded, fdh);
  }
}

}  // namespace
}  // namespace smatch
