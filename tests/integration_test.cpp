// End-to-end S-MATCH protocol tests: the full pipeline (Keygen with OPRF,
// InitData, Enc, upload over the simulated channel, Match, Auth, Vf),
// matching correctness on community-structured data, malicious-server
// detection, and the PR-KK collusion containment property.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>

#include "common/error.hpp"
#include "core/smatch.hpp"
#include "crypto/prf.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"
#include "net/channel.hpp"
#include "store/store.hpp"

namespace smatch {
namespace {

struct Deployment {
  std::shared_ptr<const ModpGroup> group;
  RsaOprfServer oprf;
  ClientConfig config;
  MatchServer server;
  SimChannel channel;
  std::vector<Client> clients;

  explicit Deployment(const DatasetSpec& spec, const Dataset& ds, SchemeParams params,
                      Drbg& rng)
      : group(std::make_shared<const ModpGroup>(ModpGroup::test_512())),
        oprf(RsaKeyPair::generate(rng, 512)),
        config(make_client_config(spec, params, group)) {
    clients.reserve(ds.num_users());
    for (std::size_t u = 0; u < ds.num_users(); ++u) {
      clients.push_back(Client::create(static_cast<UserId>(u + 1), ds.profile(u), config).value());
      clients.back().generate_key(oprf, rng);
      const UploadMessage up = clients.back().make_upload(rng);
      // Ship over the wire: serialize, count bytes, parse on the server.
      const Bytes wire = up.serialize();
      channel.send_to_server(wire, MessageKind::kUpload);
      const Status ingested = server.ingest(UploadMessage::parse(wire).value());
      EXPECT_TRUE(ingested.is_ok()) << ingested.to_string();
    }
  }
};

SchemeParams fast_params() {
  SchemeParams p;
  p.attribute_bits = 32;  // keep OPE recursion shallow for tests
  p.rs_threshold = 8;
  return p;
}


// Communities must stay distinct after quantization (cell width theta+1),
// so integration workloads use wide uniform alphabets (64 values per
// attribute) rather than the narrow Table II alphabets.
DatasetSpec wide_spec(std::size_t num_users) {
  DatasetSpec spec;
  spec.name = "wide";
  spec.num_users = num_users;
  for (int i = 0; i < 6; ++i) {
    spec.attributes.push_back(AttributeSpec::uniform("attr" + std::to_string(i), 6.0));
  }
  return spec;
}

TEST(EndToEnd, SameCommunityUsersMatchAndVerify) {
  Drbg rng(1);
  const DatasetSpec spec = wide_spec(24);
  // 3 tight communities: everyone in a community shares a profile key.
  const Dataset ds = Dataset::generate_clustered(spec, rng, 3, 0);
  Deployment dep(spec, ds, fast_params(), rng);

  // Every user's query returns only same-community users, all verifiable.
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    Client& querier = dep.clients[u];
    const QueryRequest q = querier.make_query(7, 1000 + static_cast<std::uint64_t>(u));
    const QueryResult r = dep.server.match(QueryRequest::parse(q.serialize()).value(), 5).value();

    for (const auto& entry : r.entries) {
      const std::size_t other = entry.user_id - 1;
      EXPECT_EQ(ds.communities()[u], ds.communities()[other])
          << "user " << u + 1 << " matched foreign user " << entry.user_id;
      EXPECT_TRUE(querier.verify_entry(entry));
    }
    // With jitter 0, every community member shares the key; expect
    // matches whenever the community has other members.
    std::size_t community_size = 0;
    for (std::size_t v = 0; v < ds.num_users(); ++v) {
      if (ds.communities()[v] == ds.communities()[u]) ++community_size;
    }
    if (community_size > 1) {
      EXPECT_FALSE(r.entries.empty());
    }
  }
}

TEST(EndToEnd, JitteredCommunitiesStillMatchMostly) {
  Drbg rng(2);
  const DatasetSpec spec = wide_spec(30);
  SchemeParams params = fast_params();
  params.rs_threshold = 9;
  // Jitter 2 << quantization width 8: most users stay in their cell.
  const Dataset ds = Dataset::generate_clustered(spec, rng, 3, 2);
  Deployment dep(spec, ds, params, rng);

  std::size_t with_matches = 0;
  std::size_t verified = 0, total = 0;
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    const QueryResult r = dep.server.match(dep.clients[u].make_query(1, 1), 5).value();
    if (!r.entries.empty()) ++with_matches;
    for (const auto& e : r.entries) {
      ++total;
      if (dep.clients[u].verify_entry(e)) ++verified;
    }
  }
  // Same-key entries always verify.
  EXPECT_EQ(verified, total);
  EXPECT_GT(with_matches, ds.num_users() / 2);
}

TEST(EndToEnd, MaliciousServerAttacksAreDetected) {
  Drbg rng(3);
  const DatasetSpec spec = wide_spec(16);
  const Dataset ds = Dataset::generate_clustered(spec, rng, 2, 0);
  Deployment dep(spec, ds, fast_params(), rng);

  // Find a querier with at least one honest match.
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    Client& querier = dep.clients[u];
    const QueryResult honest = dep.server.match(querier.make_query(1, 1), 5).value();
    if (honest.entries.empty()) continue;

    EXPECT_EQ(querier.count_verified(honest), honest.entries.size());

    // Attack 1: forge tokens.
    const QueryResult forged = tamper_result(honest, ServerAttack::kForgeToken, rng);
    EXPECT_EQ(querier.count_verified(forged), 0u);

    // Attack 2: return real tokens under swapped identities.
    const QueryResult swapped = tamper_result(honest, ServerAttack::kSwapIdentity, rng);
    EXPECT_EQ(querier.count_verified(swapped), 0u);

    // Attack 3: substitute users from a different community.
    std::vector<MatchEntry> foreign;
    for (std::size_t v = 0; v < ds.num_users(); ++v) {
      if (ds.communities()[v] != ds.communities()[u]) {
        const QueryResult other = dep.server.match(dep.clients[v].make_query(2, 2), 1).value();
        for (const auto& e : other.entries) foreign.push_back(e);
        if (!foreign.empty()) break;
      }
    }
    if (!foreign.empty()) {
      const QueryResult substituted =
          tamper_result(honest, ServerAttack::kForeignUser, rng, foreign);
      EXPECT_EQ(querier.count_verified(substituted), 0u);
    }
    return;  // one querier suffices
  }
  FAIL() << "no querier with matches found";
}

TEST(EndToEnd, CollusionLeaksOnlyOwnGroup) {
  // PR-KK (Theorem 2): a user colluding with the server exposes only the
  // m users in their own key group, never the other N - m.
  Drbg rng(4);
  const DatasetSpec spec = wide_spec(20);
  const Dataset ds = Dataset::generate_clustered(spec, rng, 4, 0);
  Deployment dep(spec, ds, fast_params(), rng);

  const std::size_t colluder = 0;
  const Bytes& colluder_key = dep.clients[colluder].profile_key().key;
  const Bytes& colluder_index = dep.clients[colluder].profile_key().index;

  std::size_t exposed = 0;
  for (std::size_t v = 0; v < ds.num_users(); ++v) {
    const bool same_index = dep.clients[v].profile_key().index == colluder_index;
    const bool same_community = ds.communities()[v] == ds.communities()[colluder];
    EXPECT_EQ(same_index, same_community);
    if (same_index) {
      ++exposed;
      // The colluder's key decrypts group members' tokens...
      const UploadMessage up = dep.clients[v].make_upload(rng);
      EXPECT_TRUE(dep.clients[colluder].auth().verify_token(
          colluder_key, up.auth_token, up.user_id));
    } else {
      // ...but nothing outside the group.
      const UploadMessage up = dep.clients[v].make_upload(rng);
      EXPECT_FALSE(dep.clients[colluder].auth().verify_token(
          colluder_key, up.auth_token, up.user_id));
    }
  }
  EXPECT_LT(exposed, ds.num_users());  // m << N
}

TEST(EndToEnd, ServerSeesOnlyCiphertextAndOrder) {
  // Honest-but-curious server: the upload must contain no attribute value
  // in the clear, and chains in one group must decrypt only with the key.
  Drbg rng(5);
  const DatasetSpec spec = wide_spec(8);
  const Dataset ds = Dataset::generate_clustered(spec, rng, 1, 0);
  Deployment dep(spec, ds, fast_params(), rng);

  const UploadMessage up = dep.clients[0].make_upload(rng);
  // The ciphertext is not the plaintext chain: decrypting with the right
  // key works, a wrong key cannot reproduce it.
  const std::size_t pt_bits = fast_params().chain_bits(ds.num_attributes());
  const Ope right(prf(dep.clients[0].profile_key().key, to_bytes("smatch-ope-key")),
                  pt_bits, pt_bits + fast_params().ope_slack_bits);
  const BigInt chain = right.decrypt(up.chain_cipher);
  EXPECT_LE(chain.bit_length(), pt_bits);
  EXPECT_NE(chain, up.chain_cipher);
}

TEST(EndToEnd, QueryResultOrderReflectsChainDistance) {
  // Users in one key group with increasing single-attribute values: the
  // k-nearest answer must be the order-adjacent users (Definition 4).
  Drbg rng(6);
  DatasetSpec spec;
  spec.name = "ladder";
  spec.num_users = 5;
  spec.attributes = {AttributeSpec::uniform("a", 4.0), AttributeSpec::uniform("b", 4.0)};

  SchemeParams params = fast_params();
  params.quant_width = 16;  // one big quantization cell: everyone shares a key

  auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());
  const ClientConfig config = make_client_config(spec, params, group);
  RsaOprfServer oprf(RsaKeyPair::generate(rng, 512));
  MatchServer server;

  std::vector<Client> clients;
  for (UserId id = 1; id <= 5; ++id) {
    // Profiles 0,0 / 1,1 / ... / 4,4 — all within one cell of width 16.
    clients.push_back(Client::create(id, Profile{id - 1, id - 1}, config).value());
    clients.back().generate_key(oprf, rng);
    ASSERT_TRUE(server.ingest(clients.back().make_upload(rng)).is_ok());
  }
  ASSERT_EQ(server.num_groups(), 1u);

  // Querier 3 (profile 2,2): its 2 order-nearest are users 2 and 4.
  const QueryResult r = server.match(clients[2].make_query(1, 1), 2).value();
  ASSERT_EQ(r.entries.size(), 2u);
  std::vector<UserId> ids = {r.entries[0].user_id, r.entries[1].user_id};
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<UserId>{2, 4}));
}

TEST(EndToEnd, ChannelAccountsUploadBytes) {
  Drbg rng(7);
  const DatasetSpec spec = wide_spec(4);
  const Dataset ds = Dataset::generate_clustered(spec, rng, 1, 0);
  Deployment dep(spec, ds, fast_params(), rng);

  EXPECT_EQ(dep.channel.uplink().messages, 4u);
  EXPECT_GT(dep.channel.uplink().bytes, 0u);
  EXPECT_GT(dep.channel.uplink().sim_seconds, 0.0);
  EXPECT_EQ(dep.channel.bytes_of(MessageKind::kUpload), dep.channel.uplink().bytes);
}

TEST(EndToEnd, ClientRequiresKeyBeforeUpload) {
  Drbg rng(8);
  const auto spec = infocom06_spec();
  const ClientConfig config = make_client_config(
      spec, fast_params(), std::make_shared<const ModpGroup>(ModpGroup::test_512()));
  Client c = Client::create(1, Profile{1, 2, 3, 4, 5, 6}, config).value();
  EXPECT_THROW((void)c.make_upload(rng), Error);
  EXPECT_THROW((void)c.profile_key(), Error);
  // The batch entry points report the missing key as a Status instead.
  EXPECT_EQ(c.make_upload_batch(2, rng).code(), StatusCode::kMalformedMessage);
  EXPECT_EQ(c.encrypt_batch({}).code(), StatusCode::kMalformedMessage);
}

TEST(EndToEnd, ChurnReenrollSupersedesOldGroupAndSurvivesRestart) {
  namespace fs = std::filesystem;
  Drbg seedr(9);
  const DatasetSpec spec = wide_spec(18);
  Drbg data_rng = seedr.fork(to_bytes("data"));
  const Dataset ds = Dataset::generate_clustered(spec, data_rng, 3, 0);

  auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());
  const ClientConfig config = make_client_config(spec, fast_params(), group);
  RsaOprfServer oprf(RsaKeyPair::generate(seedr, 512));

  // Build every upload wire once (per-user forked DRBGs), so the
  // in-memory and store-backed servers ingest byte-identical streams.
  std::vector<Client> clients;
  std::vector<Bytes> wires;
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    clients.push_back(Client::create(static_cast<UserId>(u + 1), ds.profile(u), config).value());
    Drbg r = seedr.fork(to_bytes("user-" + std::to_string(u)));
    clients.back().generate_key(oprf, r);
    wires.push_back(clients.back().make_upload(r).serialize());
  }

  // Churn: user 0 re-enrolls with a different community's profile — a
  // new fuzzy key, so the old group entry must be superseded, not joined.
  const std::size_t x = 0;
  std::size_t donor = x;
  std::size_t old_peer = x;
  for (std::size_t u = 1; u < ds.num_users(); ++u) {
    if (ds.communities()[u] != ds.communities()[x] && donor == x) donor = u;
    if (ds.communities()[u] == ds.communities()[x] && old_peer == x) old_peer = u;
  }
  ASSERT_NE(donor, x);
  ASSERT_NE(old_peer, x);
  Client churned = Client::create(static_cast<UserId>(x + 1), ds.profile(donor), config).value();
  Drbg churn_rng = seedr.fork(to_bytes("churn"));
  churned.generate_key(oprf, churn_rng);
  wires.push_back(churned.make_upload(churn_rng).serialize());

  const fs::path store_dir =
      fs::temp_directory_path() /
      ("smatch_store_churn_it_" + std::to_string(::getpid()));
  struct Guard {
    const fs::path& d;
    ~Guard() {
      std::error_code ec;
      fs::remove_all(d, ec);
    }
  } guard{store_dir};
  fs::remove_all(store_dir);

  // Deterministic query set replayed against every server build.
  std::vector<Bytes> requests;
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    Client& q = (u == x) ? churned : clients[u];
    requests.push_back(q.make_query(static_cast<std::uint32_t>(u + 1), 1000 + u).serialize());
  }

  auto drive = [&](MatchServer& server) {
    for (const Bytes& wire : wires) {
      ASSERT_TRUE(server.ingest(UploadMessage::parse(wire).value()).is_ok());
    }
  };
  auto answers = [&](MatchServer& server) {
    std::vector<Bytes> out;
    for (const Bytes& req : requests) {
      out.push_back(server.match(QueryRequest::parse(req).value(), 5).value().serialize());
    }
    return out;
  };

  MatchServer mem;
  drive(mem);
  EXPECT_EQ(mem.num_users(), ds.num_users());  // re-ingest replaced, not added

  // Old group superseded: x's former peer no longer matches x...
  const QueryResult old_side =
      mem.match(QueryRequest::parse(requests[old_peer]).value(), 18).value();
  for (const auto& e : old_side.entries) EXPECT_NE(e.user_id, x + 1);
  // ...and the new group contains x, verifiably (Auth/Vf still hold).
  const QueryResult new_side =
      mem.match(QueryRequest::parse(requests[donor]).value(), 18).value();
  bool found = false;
  for (const auto& e : new_side.entries) found |= (e.user_id == x + 1);
  EXPECT_TRUE(found);
  const QueryResult own =
      mem.match(QueryRequest::parse(requests[x]).value(), 18).value();
  EXPECT_FALSE(own.entries.empty());
  for (const auto& e : own.entries) EXPECT_TRUE(churned.verify_entry(e));

  // Store-backed path: same ingest stream, then a crash-free restart
  // (fresh engine replaying the WAL). All three answer streams must be
  // byte-identical.
  const std::vector<Bytes> mem_answers = answers(mem);
  {
    MatchServer durable;
    store::StoreOptions cfg;
    cfg.directory = store_dir.string();
    cfg.durability.fsync = store::FsyncPolicy::kNever;
    ASSERT_TRUE(durable.attach_store(cfg).is_ok());
    drive(durable);
    EXPECT_EQ(answers(durable), mem_answers);
  }
  MatchServer recovered;
  store::StoreOptions cfg;
  cfg.directory = store_dir.string();
  cfg.durability.fsync = store::FsyncPolicy::kNever;
  ASSERT_TRUE(recovered.attach_store(cfg).is_ok());
  EXPECT_EQ(recovered.num_users(), ds.num_users());
  EXPECT_EQ(answers(recovered), mem_answers);
}

TEST(EndToEnd, ProfileArityMismatchRejected) {
  const auto spec = infocom06_spec();
  const ClientConfig config = make_client_config(
      spec, fast_params(), std::make_shared<const ModpGroup>(ModpGroup::test_512()));
  // The factory reports misconfiguration as a Status; there is no longer
  // a throwing constructor to reach.
  EXPECT_EQ(Client::create(1, Profile{1, 2}, config).code(),
            StatusCode::kMalformedMessage);
}

}  // namespace
}  // namespace smatch
