// Executable instantiations of the paper's Section VII security games:
//
//   PR-OKPA (Definition 6): plaintext recovery under ordered known
//   plaintext attack — the curious server holds known (plaintext,
//   ciphertext) pairs plus the ordered ciphertext table and tries to
//   recover an unknown plaintext by order pruning. Theorem 1 ties the
//   adversary's advantage to the plaintext entropy; these tests show the
//   advantage collapsing once the entropy-increase step runs.
//
//   PR-KK (Definition 7): plaintext recovery under known key attack — a
//   user colludes with the server and shares their profile key. Theorem 2
//   bounds the advantage by m/N (their own key group only).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "core/smatch.hpp"
#include "crypto/drbg.hpp"
#include "crypto/prf.hpp"
#include "datasets/dataset.hpp"

namespace smatch {
namespace {

// ---------------------------------------------------------------------
// PR-OKPA: the adversary knows pairs bracketing the target and counts the
// plaintexts consistent with the order constraints. If exactly one
// remains, it wins.
// ---------------------------------------------------------------------

struct OkpaOutcome {
  std::size_t games = 0;
  std::size_t wins = 0;
  double win_rate() const {
    return games == 0 ? 0.0 : static_cast<double>(wins) / static_cast<double>(games);
  }
};

// Plays the game over a population of users holding a single attribute
// from a 4-value alphabet. `use_entropy_increase` toggles the S-MATCH
// InitData step; without it the plaintext space is the raw alphabet.
OkpaOutcome play_okpa(bool use_entropy_increase, Drbg& rng) {
  const std::vector<double> probs = {0.25, 0.25, 0.25, 0.25};
  const std::size_t k_bits = use_entropy_increase ? 32 : 2;
  const EntropyMapper mapper(probs, 32);
  const Ope ope(rng.bytes(32), k_bits, k_bits + 16);

  OkpaOutcome outcome;
  for (int game = 0; game < 40; ++game) {
    // Three users: two with known plaintexts (0 and 3), a target with 1
    // or 2. The server sees all three ciphertexts and their order.
    const AttrValue target_value = 1 + static_cast<AttrValue>(rng.below(2));
    BigInt lo_pt{0}, hi_pt{3}, target_pt{target_value};
    if (use_entropy_increase) {
      lo_pt = mapper.map(0, rng);
      hi_pt = mapper.map(3, rng);
      target_pt = mapper.map(target_value, rng);
    }
    const BigInt lo_ct = ope.encrypt(lo_pt);
    const BigInt hi_ct = ope.encrypt(hi_pt);
    const BigInt target_ct = ope.encrypt(target_pt);
    EXPECT_TRUE(lo_ct < target_ct && target_ct < hi_ct) << "bracket invariant";

    // Adversary: enumerate plaintexts consistent with
    // lo_pt < m < hi_pt. With the raw alphabet that is {1, 2}; guessing
    // wins half the time, and if the alphabet had a single interior value
    // it would win outright. With mapped 32-bit plaintexts the space is
    // ~2^31 — the adversary's guess is the midpoint.
    ++outcome.games;
    const BigInt guess = (lo_pt + hi_pt) >> 1;  // best single guess
    BigInt truth = target_pt;
    if (!use_entropy_increase) {
      // Raw game: the adversary can actually enumerate; emulate the best
      // strategy of picking uniformly between the two candidates.
      const BigInt candidate{1 + static_cast<std::uint64_t>(rng.below(2))};
      if (candidate == truth) ++outcome.wins;
    } else {
      if (guess == truth) ++outcome.wins;
    }
  }
  return outcome;
}

TEST(PrOkpaGame, RawEncodingLosesHalfTheTime) {
  Drbg rng(1);
  const OkpaOutcome raw = play_okpa(false, rng);
  // Two candidates -> the adversary wins about half the games: the raw
  // scheme provides ~1 bit of security.
  EXPECT_GT(raw.win_rate(), 0.25);
}

TEST(PrOkpaGame, EntropyIncreaseCollapsesAdvantage) {
  Drbg rng(2);
  const OkpaOutcome mapped = play_okpa(true, rng);
  // ~2^31 candidates: the adversary should win essentially never.
  EXPECT_EQ(mapped.wins, 0u);
  EXPECT_EQ(mapped.games, 40u);
}

TEST(PrOkpaGame, SearchSpaceScalesWithMappedBits) {
  // The quantitative core of Theorem 1: the order-pruned search space
  // between two known mapped plaintexts grows ~2^k with the plaintext
  // size k, while for raw values it is the alphabet gap.
  Drbg rng(3);
  const std::vector<double> probs = {0.5, 0.5};
  for (std::size_t k : {16u, 32u, 64u}) {
    const EntropyMapper mapper(probs, k);
    const BigInt lo = mapper.map(0, rng);
    const BigInt hi = mapper.map(1, rng);
    const BigInt space = hi - lo - BigInt{1};
    // At least 2^(k-3) candidates separate adjacent values.
    EXPECT_GE(space.bit_length(), k - 3) << "k=" << k;
  }
}

// ---------------------------------------------------------------------
// PR-KK: collusion exposes exactly the colluder's key group.
// ---------------------------------------------------------------------

TEST(PrKkGame, AdvantageIsGroupFractionOfPopulation) {
  Drbg rng(4);
  DatasetSpec spec;
  spec.name = "prkk";
  spec.num_users = 24;
  for (int i = 0; i < 4; ++i) {
    spec.attributes.push_back(AttributeSpec::uniform("a" + std::to_string(i), 6.0));
  }
  const Dataset ds = Dataset::generate_clustered(spec, rng, 6, 0);

  SchemeParams params;
  params.attribute_bits = 32;
  auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());
  const ClientConfig config = make_client_config(spec, params, group);
  RsaOprfServer oprf(RsaKeyPair::generate(rng, 512));

  std::vector<Client> clients;
  std::vector<UploadMessage> uploads;
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    clients.push_back(
        Client::create(static_cast<UserId>(u + 1), ds.profile(u), config).value());
    clients.back().generate_key(oprf, rng);
    uploads.push_back(clients.back().make_upload(rng));
  }

  // The colluder hands the server their profile key. The server tries to
  // decrypt every stored chain with it and recover raw attribute values.
  const std::size_t colluder = 0;
  const Bytes& leaked_key = clients[colluder].profile_key().key;
  const std::size_t pt_bits = params.chain_bits(spec.attributes.size());
  const Ope leaked_ope(prf(leaked_key, to_bytes("smatch-ope-key")), pt_bits,
                       pt_bits + params.ope_slack_bits);
  const AttributeChain chain(spec.attributes.size(), params.attribute_bits);

  std::vector<EntropyMapper> mappers;
  for (const auto& p : config.attribute_probs) {
    mappers.emplace_back(p, params.attribute_bits);
  }

  std::size_t recovered = 0;
  std::size_t group_size = 0;
  for (std::size_t v = 0; v < ds.num_users(); ++v) {
    const bool same_group =
        clients[v].profile_key().index == clients[colluder].profile_key().index;
    group_size += same_group;

    bool win = false;
    try {
      const BigInt plain_chain = leaked_ope.decrypt(uploads[v].chain_cipher);
      const auto mapped = chain.disassemble(plain_chain, leaked_key);
      Profile guessed(mapped.size());
      for (std::size_t a = 0; a < mapped.size(); ++a) {
        guessed[a] = mappers[a].unmap(mapped[a]);
      }
      win = guessed == ds.profile(v);
    } catch (const Error&) {
      win = false;  // wrong key: invalid ciphertext or garbage values
    }
    if (win) ++recovered;

    // Theorem 2's structure: recovery succeeds exactly within the group.
    EXPECT_EQ(win, same_group) << "user " << v + 1;
  }

  // Adv = m / N, with m << N.
  EXPECT_EQ(recovered, group_size);
  EXPECT_LT(recovered, ds.num_users() / 2);
  EXPECT_GE(recovered, 1u);  // the colluder at least exposes themself
}

// ---------------------------------------------------------------------
// Result unforgeability: Q forgery attempts against Vf all fail.
// ---------------------------------------------------------------------

TEST(ForgeryGame, RandomAndSplicedForgeriesNeverVerify) {
  Drbg rng(5);
  const AuthScheme auth(std::make_shared<const ModpGroup>(ModpGroup::test_512()));
  const Bytes key = rng.bytes(32);
  const Bytes other_key = rng.bytes(32);
  const BigInt secret = auth.random_secret(rng);
  const Bytes honest = auth.make_token(key, secret, 100, rng);
  const Bytes other = auth.make_token(other_key, auth.random_secret(rng), 200, rng);

  std::size_t accepted = 0;
  for (int q = 0; q < 64; ++q) {
    // Strategy 1: random tokens.
    accepted += auth.verify_token(key, rng.bytes(auth.token_size()), 100);
    // Strategy 2: splice halves of two real tokens.
    Bytes spliced(honest.begin(), honest.begin() + static_cast<std::ptrdiff_t>(honest.size() / 2));
    spliced.insert(spliced.end(), other.begin() + static_cast<std::ptrdiff_t>(other.size() / 2),
                   other.end());
    accepted += auth.verify_token(key, spliced, 100);
    // Strategy 3: replay under a different claimed identity.
    accepted += auth.verify_token(key, honest, 100 + static_cast<UserId>(q) + 1);
  }
  EXPECT_EQ(accepted, 0u);
  // Sanity: the honest token still verifies.
  EXPECT_TRUE(auth.verify_token(key, honest, 100));
}

}  // namespace
}  // namespace smatch
