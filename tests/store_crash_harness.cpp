// Crash-recovery harness for the durable profile store, driven by
// scripts/ci.sh:
//
//   store_crash_harness --mode ingest --dir D [--users N] [--maintenance]
//       Attaches a store (single WAL shard, fsync=always) and ingests
//       deterministic synthetic uploads 1..N, writing the count to
//       D/progress after each one. ci.sh polls the progress file and
//       delivers a kill -9 mid-stream. With --maintenance, an aggressive
//       background policy rotates segments and checkpoints continuously
//       under the ingest, so the external kill lands in whatever
//       rotation/compaction state the scheduler happens to be in.
//
//   store_crash_harness --mode ingest --dir D --maintenance --kill-at P
//       Precision variant: instead of an external kill -9, the process
//       _exit(0)s itself inside the maintenance hook the first time the
//       named crash point fires (rotate.sealed, rotate.manifest,
//       checkpoint.after_snapshots, gc.manifest). Prints "KILLED at P"
//       first so the driver can assert the window was actually hit.
//
//   store_crash_harness --mode verify --dir D
//       Reopens the store after the crash. With one WAL shard and
//       sequential appends, the recovered state must be exactly the
//       uploads whose records survived — a strict prefix 1..M (a
//       checkpoint mid-stream folds a prefix into the snapshot; the
//       rest replays from the surviving segments). The harness rebuilds
//       a fresh reference engine from the same generator, feeds it that
//       prefix, and compares every kNN answer byte for byte. Prints
//       "VERIFIED <M> users" and exits 0.
//
//   store_crash_harness --mode smoke --dir D
//       Clean-restart variant for plain ctest: ingest (with background
//       maintenance), close, reopen, verify — no kill involved.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/server.hpp"
#include "crypto/drbg.hpp"
#include "store/store.hpp"

namespace {

namespace fs = std::filesystem;
using namespace smatch;

/// Must match tests/store_test.cpp: everything derives from the user id.
UploadMessage synthetic_upload(UserId id, std::size_t num_groups = 4) {
  UploadMessage up;
  up.user_id = id;
  up.key_index.assign(32, static_cast<std::uint8_t>(id % num_groups));
  up.key_index[1] = static_cast<std::uint8_t>((id % num_groups) * 37 + 1);
  up.chain_cipher = BigInt::from_decimal(std::to_string(1000000007ull * id + 13));
  up.chain_cipher_bits = 64;
  Drbg rng(id + 1);
  up.auth_token = rng.bytes(16);
  return up;
}

QueryRequest query_for(UserId id) {
  QueryRequest q;
  q.query_id = id * 3 + 1;
  q.timestamp = id + 100;
  q.user_id = id;
  return q;
}

store::StoreOptions harness_options(const std::string& dir, bool maintenance) {
  store::StoreOptions opts;
  opts.directory = dir;
  opts.wal_shards = 1;  // sequential appends => recovery is a strict prefix
  opts.durability.fsync = store::FsyncPolicy::kAlways;
  if (maintenance) {
    // Aggressive enough that a few hundred uploads cross every threshold
    // many times: the kill -9 window overlaps rotation, snapshot
    // streaming, and GC with high probability.
    store::MaintenancePolicy& policy = opts.maintenance.policy;
    policy.background = true;
    policy.rotate_segment_bytes = 4096;
    policy.checkpoint_sealed_segments = 1;
    policy.min_interval = std::chrono::milliseconds(10);
    policy.poll_interval = std::chrono::milliseconds(2);
  }
  return opts;
}

int ingest(const std::string& dir, UserId users, bool maintenance,
           const std::string& kill_at) {
  MatchServer server;
  if (Status s = server.attach_store(harness_options(dir, maintenance));
      !s.is_ok()) {
    std::fprintf(stderr, "attach_store: %s\n", s.message().c_str());
    return 1;
  }
  if (!kill_at.empty()) {
    // Die *inside* the named crash window, exactly where a kill -9 could
    // land. _exit skips every destructor — nothing gets flushed, sealed,
    // or unlinked on the way out, just like the real signal.
    server.store()->set_maintenance_hook([kill_at](std::string_view point) {
      if (point == kill_at) {
        std::printf("KILLED at %s\n", std::string(kill_at).c_str());
        std::fflush(stdout);
        ::_exit(0);
      }
      return true;
    });
  }
  const fs::path progress = fs::path(dir) / "progress";
  for (UserId id = 1; id <= users; ++id) {
    if (Status s = server.ingest(synthetic_upload(id)); !s.is_ok()) {
      std::fprintf(stderr, "ingest %u: %s\n", id, s.message().c_str());
      return 1;
    }
    // Progress marker for the kill -9 driver (atomic enough: one line).
    std::ofstream(progress, std::ios::trunc) << id << "\n";
  }
  std::printf("INGESTED %u users\n", users);
  return 0;
}

int verify(const std::string& dir) {
  // Recovery itself runs with maintenance quiet: replay first, judge the
  // state, and let the next process decide when to compact.
  MatchServer recovered;
  if (Status s = recovered.attach_store(harness_options(dir, false));
      !s.is_ok()) {
    std::fprintf(stderr, "attach_store: %s\n", s.message().c_str());
    return 1;
  }
  const auto users = static_cast<UserId>(recovered.num_users());
  if (users == 0) {
    std::fprintf(stderr, "recovered zero users — kill landed before any fsync?\n");
    return 1;
  }

  // Prefix check: users 1..M answer, M+1 is unknown.
  if (recovered.match(query_for(users + 1), 4).code() != StatusCode::kUnknownUser) {
    std::fprintf(stderr, "user %u should be unknown after recovery\n", users + 1);
    return 1;
  }

  // Reference: a fresh engine fed the same prefix must answer every kNN
  // query byte-identically.
  MatchServer reference;
  for (UserId id = 1; id <= users; ++id) {
    if (Status s = reference.ingest(synthetic_upload(id)); !s.is_ok()) {
      std::fprintf(stderr, "reference ingest %u: %s\n", id, s.message().c_str());
      return 1;
    }
  }
  for (UserId id = 1; id <= users; ++id) {
    const auto got = recovered.match(query_for(id), 4);
    const auto want = reference.match(query_for(id), 4);
    if (!got.is_ok() || !want.is_ok()) {
      std::fprintf(stderr, "user %u: match failed after recovery\n", id);
      return 1;
    }
    if (got->serialize() != want->serialize()) {
      std::fprintf(stderr, "user %u: recovered kNN answer differs\n", id);
      return 1;
    }
  }
  const auto metrics = recovered.store()->metrics();
  std::printf(
      "VERIFIED %u users (replayed=%llu skipped=%llu torn=%llu crc=%llu "
      "segments=%llu)\n",
      users, static_cast<unsigned long long>(metrics.replayed_records),
      static_cast<unsigned long long>(metrics.replay_skipped),
      static_cast<unsigned long long>(metrics.torn_tails),
      static_cast<unsigned long long>(metrics.crc_stops),
      static_cast<unsigned long long>(metrics.sealed_segments + 1));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode;
  std::string dir;
  std::string kill_at;
  bool maintenance = false;
  UserId users = 500;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--maintenance") == 0) {
      maintenance = true;
      continue;
    }
    if (i + 1 >= argc) break;
    if (std::strcmp(argv[i], "--mode") == 0) mode = argv[i + 1];
    if (std::strcmp(argv[i], "--dir") == 0) dir = argv[i + 1];
    if (std::strcmp(argv[i], "--kill-at") == 0) kill_at = argv[i + 1];
    if (std::strcmp(argv[i], "--users") == 0) {
      users = static_cast<UserId>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  if (dir.empty() || mode.empty()) {
    std::fprintf(stderr,
                 "usage: %s --mode ingest|verify|smoke --dir D [--users N] "
                 "[--maintenance] [--kill-at POINT]\n",
                 argv[0]);
    return 2;
  }
  if (!kill_at.empty() && !maintenance) {
    std::fprintf(stderr, "--kill-at needs --maintenance (the crash points "
                         "only fire when the scheduler runs)\n");
    return 2;
  }
  if (mode == "ingest") return ingest(dir, users, maintenance, kill_at);
  if (mode == "verify") return verify(dir);
  if (mode == "smoke") {
    // Cleans up on the failure returns too — a leaked smatch_store_*
    // directory fails the scripts/ci.sh stray-tempdir check.
    struct DirGuard {
      const std::string& d;
      ~DirGuard() {
        std::error_code ec;
        fs::remove_all(d, ec);
      }
    } guard{dir};
    fs::remove_all(dir);
    if (int rc = ingest(dir, 50, /*maintenance=*/true, /*kill_at=*/""); rc != 0) {
      return rc;
    }
    return verify(dir);
  }
  std::fprintf(stderr, "unknown mode: %s\n", mode.c_str());
  return 2;
}
