// Known-answer (NIST/RFC) and property tests for the crypto substrate.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "crypto/aes.hpp"
#include "crypto/drbg.hpp"
#include "crypto/hmac.hpp"
#include "crypto/prf.hpp"
#include "crypto/sha2.hpp"

namespace smatch {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = to_bytes("The quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(BytesView(msg).subspan(0, split));
    h.update(BytesView(msg).subspan(split));
    EXPECT_EQ(h.finish(), Sha256::hash(msg)) << "split=" << split;
  }
}

TEST(Sha512, Abc) {
  EXPECT_EQ(to_hex(Sha512::hash(to_bytes("abc"))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, EmptyString) {
  EXPECT_EQ(to_hex(Sha512::hash({})),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(HmacSha256, Rfc4231TestCase1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231TestCase2) {
  EXPECT_EQ(to_hex(hmac_sha256(to_bytes("Jefe"), to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231TestCase3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hkdf, Rfc5869TestCase1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf(ikm, salt, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, ExpandLengthLimit) {
  const Bytes prk(32, 1);
  EXPECT_NO_THROW((void)hkdf_expand(prk, {}, 255 * 32));
  EXPECT_THROW((void)hkdf_expand(prk, {}, 255 * 32 + 1), CryptoError);
}

TEST(Aes, Fips197Aes128) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Aes cipher(key);
  std::uint8_t ct[16];
  cipher.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex({ct, 16}), "69c4e0d86a7b0430d8cdb78070b4c55a");
  std::uint8_t back[16];
  cipher.decrypt_block(ct, back);
  EXPECT_EQ(to_hex({back, 16}), to_hex(pt));
}

TEST(Aes, Fips197Aes192) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f1011121314151617");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Aes cipher(key);
  std::uint8_t ct[16];
  cipher.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex({ct, 16}), "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(Aes, Fips197Aes256) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Aes cipher(key);
  std::uint8_t ct[16];
  cipher.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex({ct, 16}), "8ea2b7ca516745bfeafc49904b496089");
  std::uint8_t back[16];
  cipher.decrypt_block(ct, back);
  EXPECT_EQ(to_hex({back, 16}), to_hex(pt));
}

TEST(Aes, RejectsBadKeySizes) {
  EXPECT_THROW(Aes(Bytes(15, 0)), CryptoError);
  EXPECT_THROW(Aes(Bytes(33, 0)), CryptoError);
  EXPECT_THROW(Aes(Bytes{}), CryptoError);
}

TEST(AesCtr, RoundTripVariousLengths) {
  Drbg rng(99);
  const Bytes key = rng.bytes(32);
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 64u, 1000u}) {
    const Bytes pt = rng.bytes(len);
    const Bytes blob = aes_ctr_encrypt(key, pt, rng);
    EXPECT_EQ(blob.size(), len + 16);
    EXPECT_EQ(aes_ctr_decrypt(key, blob), pt) << "len=" << len;
  }
}

TEST(AesCtr, CounterIncrementsAcrossBlockBoundary) {
  // An IV of all-0xff exercises the big-endian carry chain.
  const Bytes key(32, 0x42);
  const Bytes iv(16, 0xff);
  const Bytes pt(48, 0x00);
  const Bytes ks = aes_ctr(key, iv, pt);
  // Keystream blocks must differ (counter must actually advance).
  EXPECT_NE(Bytes(ks.begin(), ks.begin() + 16), Bytes(ks.begin() + 16, ks.begin() + 32));
  EXPECT_NE(Bytes(ks.begin() + 16, ks.begin() + 32), Bytes(ks.begin() + 32, ks.end()));
}

TEST(AesCtr, WrongKeyGarbles) {
  Drbg rng(100);
  const Bytes key1 = rng.bytes(32);
  const Bytes key2 = rng.bytes(32);
  const Bytes pt = to_bytes("attack at dawn");
  const Bytes blob = aes_ctr_encrypt(key1, pt, rng);
  EXPECT_NE(aes_ctr_decrypt(key2, blob), pt);
}

TEST(AesCtr, TooShortBlobThrows) {
  EXPECT_THROW((void)aes_ctr_decrypt(Bytes(32, 0), Bytes(15, 0)), CryptoError);
}

TEST(Drbg, MatchesChaCha20KeystreamVector) {
  // ChaCha20 block with all-zero key, counter 0, nonce 0 (RFC 7539 A.1).
  Drbg rng(Bytes{});
  const Bytes out = rng.bytes(32);
  EXPECT_EQ(to_hex(out),
            "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7");
}

TEST(Drbg, DeterministicAndSeedSensitive) {
  Drbg a(1234u);
  Drbg b(1234u);
  Drbg c(1235u);
  const Bytes x = a.bytes(64);
  EXPECT_EQ(x, b.bytes(64));
  EXPECT_NE(x, c.bytes(64));
}

TEST(Drbg, ForkIndependence) {
  Drbg parent(7u);
  Drbg child1 = parent.fork(to_bytes("one"));
  Drbg parent2(7u);
  (void)parent2.bytes(32);  // same state advance as fork consumed
  Drbg child2 = parent2.fork(to_bytes("two"));
  EXPECT_NE(child1.bytes(32), child2.bytes(32));
}

TEST(Drbg, BelowIsUniformish) {
  Drbg rng(55u);
  std::size_t counts[7] = {};
  for (int i = 0; i < 7000; ++i) ++counts[rng.below(7)];
  for (std::size_t c : counts) {
    EXPECT_GT(c, 800u);
    EXPECT_LT(c, 1200u);
  }
}

TEST(Prf, DeterministicKeyedStreams) {
  const Bytes key = to_bytes("key");
  Drbg s1 = prf_stream(key, to_bytes("ctx"));
  Drbg s2 = prf_stream(key, to_bytes("ctx"));
  Drbg s3 = prf_stream(key, to_bytes("other"));
  const Bytes a = s1.bytes(48);
  EXPECT_EQ(a, s2.bytes(48));
  EXPECT_NE(a, s3.bytes(48));
}

TEST(BytesUtil, HexRoundTrip) {
  const Bytes b = {0x00, 0x7f, 0x80, 0xff};
  EXPECT_EQ(from_hex(to_hex(b)), b);
  EXPECT_EQ(from_hex("DEADbeef"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
  EXPECT_THROW((void)from_hex("abc"), SerdeError);
  EXPECT_THROW((void)from_hex("zz"), SerdeError);
}

TEST(BytesUtil, CtEqual) {
  EXPECT_TRUE(ct_equal(to_bytes("same"), to_bytes("same")));
  EXPECT_FALSE(ct_equal(to_bytes("same"), to_bytes("sama")));
  EXPECT_FALSE(ct_equal(to_bytes("same"), to_bytes("sam")));
}

TEST(BytesUtil, XorAndConcat) {
  const Bytes a = {0xf0, 0x0f};
  const Bytes b = {0x0f, 0x0f};
  EXPECT_EQ(xor_bytes(a, b), (Bytes{0xff, 0x00}));
  EXPECT_THROW((void)xor_bytes(a, Bytes{0x01}), CryptoError);
  EXPECT_EQ(concat({a, b}), (Bytes{0xf0, 0x0f, 0x0f, 0x0f}));
}

}  // namespace
}  // namespace smatch
