// OPE tests: the order-preservation property (the "P" of the PPE
// Definition 1, with Test(c1,c2) = [c1 >= c2]), round trips, determinism,
// and invalid-ciphertext rejection, across small and big-integer domains.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "crypto/drbg.hpp"
#include "ope/ope.hpp"

namespace smatch {
namespace {

Bytes test_key(std::uint64_t seed) {
  Drbg rng(seed);
  return rng.bytes(32);
}

struct OpeParam {
  std::size_t pt_bits;
  std::size_t ct_bits;
};

class OpeProperty : public ::testing::TestWithParam<OpeParam> {};

TEST_P(OpeProperty, PreservesOrderOnRandomPairs) {
  const auto [pt_bits, ct_bits] = GetParam();
  const Ope ope(test_key(pt_bits * 131 + ct_bits), pt_bits, ct_bits);
  Drbg rng(pt_bits + ct_bits);
  const BigInt bound = BigInt{1} << pt_bits;
  for (int iter = 0; iter < 40; ++iter) {
    const BigInt m1 = BigInt::random_below(rng, bound);
    const BigInt m2 = BigInt::random_below(rng, bound);
    const BigInt c1 = ope.encrypt(m1);
    const BigInt c2 = ope.encrypt(m2);
    // m1 >= m2  <=>  c1 >= c2 (Definition 1's publicly computable Test).
    EXPECT_EQ(m1 >= m2, c1 >= c2) << m1.to_decimal() << " vs " << m2.to_decimal();
    EXPECT_EQ(m1 == m2, c1 == c2);
    EXPECT_LT(c1.bit_length(), ct_bits + 1);
  }
}

TEST_P(OpeProperty, DecryptInvertsEncrypt) {
  const auto [pt_bits, ct_bits] = GetParam();
  const Ope ope(test_key(pt_bits * 733 + ct_bits), pt_bits, ct_bits);
  Drbg rng(pt_bits * 7 + ct_bits);
  const BigInt bound = BigInt{1} << pt_bits;
  for (int iter = 0; iter < 15; ++iter) {
    const BigInt m = BigInt::random_below(rng, bound);
    EXPECT_EQ(ope.decrypt(ope.encrypt(m)), m);
  }
  // Domain endpoints.
  EXPECT_EQ(ope.decrypt(ope.encrypt(BigInt{0})), BigInt{0});
  EXPECT_EQ(ope.decrypt(ope.encrypt(bound - BigInt{1})), bound - BigInt{1});
}

INSTANTIATE_TEST_SUITE_P(Sizes, OpeProperty,
                         ::testing::Values(OpeParam{4, 8}, OpeParam{8, 16},
                                           OpeParam{8, 12}, OpeParam{16, 32},
                                           OpeParam{32, 48}, OpeParam{64, 128},
                                           OpeParam{128, 192}, OpeParam{384, 448}));

TEST(Ope, DeterministicUnderSameKey) {
  const Ope a(test_key(1), 32, 64);
  const Ope b(test_key(1), 32, 64);
  Drbg rng(3);
  for (int iter = 0; iter < 10; ++iter) {
    const BigInt m = BigInt::random_below(rng, BigInt{1} << 32);
    EXPECT_EQ(a.encrypt(m), b.encrypt(m));
  }
}

TEST(Ope, DifferentKeysGiveDifferentMaps) {
  const Ope a(test_key(1), 32, 64);
  const Ope b(test_key(2), 32, 64);
  Drbg rng(5);
  int differing = 0;
  for (int iter = 0; iter < 20; ++iter) {
    const BigInt m = BigInt::random_below(rng, BigInt{1} << 32);
    if (a.encrypt(m) != b.encrypt(m)) ++differing;
  }
  EXPECT_GE(differing, 19);
}

TEST(Ope, ExhaustiveSmallDomainIsStrictlyMonotone) {
  const Ope ope(test_key(9), 6, 12);
  BigInt prev{-1};
  for (std::uint64_t m = 0; m < 64; ++m) {
    const BigInt c = ope.encrypt(BigInt{m});
    EXPECT_TRUE(c > prev) << "m=" << m;
    EXPECT_EQ(ope.decrypt(c), BigInt{m});
    prev = c;
  }
}

TEST(Ope, EqualSizesDegenerateToIdentity) {
  // The paper's N = M setting: the only order-preserving injection from a
  // space onto itself is the identity.
  const Ope ope(test_key(11), 10, 10);
  for (std::uint64_t m : {0ull, 1ull, 500ull, 1023ull}) {
    EXPECT_EQ(ope.encrypt(BigInt{m}), BigInt{m});
  }
}

TEST(Ope, RejectsOutOfDomainPlaintext) {
  const Ope ope(test_key(13), 16, 32);
  EXPECT_THROW((void)ope.encrypt(BigInt{1} << 16), CryptoError);
  EXPECT_THROW((void)ope.encrypt(BigInt{-1}), CryptoError);
}

TEST(Ope, RejectsInvalidCiphertext) {
  const Ope ope(test_key(17), 8, 20);
  // Collect the valid ciphertexts; anything else must be rejected.
  std::vector<BigInt> valid;
  for (std::uint64_t m = 0; m < 256; ++m) valid.push_back(ope.encrypt(BigInt{m}));
  Drbg rng(19);
  int rejected = 0;
  for (int iter = 0; iter < 50; ++iter) {
    const BigInt c = BigInt::random_below(rng, BigInt{1} << 20);
    if (std::find(valid.begin(), valid.end(), c) != valid.end()) continue;
    EXPECT_THROW((void)ope.decrypt(c), CryptoError);
    ++rejected;
  }
  EXPECT_GT(rejected, 30);
}

TEST(Ope, RejectsBadParameters) {
  EXPECT_THROW(Ope(test_key(23), 0, 8), CryptoError);
  EXPECT_THROW(Ope(test_key(23), 16, 8), CryptoError);
}

TEST(Ope, BigDomainOrderSpotChecks) {
  // 1024-bit domain: ordered plaintext ladder must produce an ordered
  // ciphertext ladder.
  const Ope ope(test_key(29), 1024, 1088);
  Drbg rng(31);
  std::vector<BigInt> ms;
  for (int i = 0; i < 8; ++i) ms.push_back(BigInt::random_below(rng, BigInt{1} << 1024));
  std::sort(ms.begin(), ms.end());
  BigInt prev{-1};
  for (const auto& m : ms) {
    const BigInt c = ope.encrypt(m);
    EXPECT_TRUE(c > prev || m == ms.front());
    prev = c;
  }
}

TEST(Ope, HugeDomainBeyondLongDoubleRange) {
  // 20000-bit domains push intermediate population sizes past the
  // long-double exponent range (2^16384); the log-space sampler must
  // stay finite and the cipher must still round-trip and preserve order.
  const Ope ope(test_key(43), 20000, 20064);
  Drbg rng(47);
  const BigInt m1 = BigInt::random_below(rng, BigInt{1} << 20000);
  const BigInt m2 = BigInt::random_below(rng, BigInt{1} << 20000);
  const BigInt c1 = ope.encrypt(m1);
  const BigInt c2 = ope.encrypt(m2);
  EXPECT_EQ(m1 < m2, c1 < c2);
  EXPECT_EQ(ope.decrypt(c1), m1);
}

TEST(Dpe, DistancePropertyAndRoundTrip) {
  const Dpe dpe = Dpe::from_key(test_key(37), 32);
  Drbg rng(41);
  for (int iter = 0; iter < 30; ++iter) {
    const BigInt m1 = BigInt{rng.below(1u << 20)};
    const BigInt m2 = BigInt{rng.below(1u << 20)};
    const BigInt m3 = BigInt{rng.below(1u << 20)};
    const BigInt c1 = dpe.encrypt(m1), c2 = dpe.encrypt(m2), c3 = dpe.encrypt(m3);
    // |m1-m2| >= |m2-m3|  <=>  |c1-c2| >= |c2-c3|  (PPE with k=3).
    const bool plain = (m1 - m2).abs() >= (m2 - m3).abs();
    const bool cipher = (c1 - c2).abs() >= (c2 - c3).abs();
    EXPECT_EQ(plain, cipher);
    EXPECT_EQ(dpe.decrypt(c1), m1);
  }
}

TEST(Dpe, RejectsNonCiphertext) {
  const Dpe dpe(BigInt{1000}, BigInt{7});
  EXPECT_EQ(dpe.decrypt(BigInt{1007}), BigInt{1});
  EXPECT_THROW((void)dpe.decrypt(BigInt{1008}), CryptoError);
  EXPECT_THROW(Dpe(BigInt{0}, BigInt{1}), CryptoError);
}

}  // namespace
}  // namespace smatch
