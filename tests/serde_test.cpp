// Wire-format robustness: Writer/Reader primitives, plus deterministic
// fuzz over truncations and bit flips of every protocol message type —
// parsers must throw SerdeError (or reject cleanly), never crash.
#include <gtest/gtest.h>

#include <type_traits>

#include "common/error.hpp"
#include "common/serde.hpp"
#include "core/key_server.hpp"
#include "core/messages.hpp"
#include "crypto/drbg.hpp"
#include "net/session.hpp"

namespace smatch {
namespace {

TEST(Serde, PrimitivesRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.var_bytes(to_bytes("payload"));
  w.str("name");

  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.var_bytes(), to_bytes("payload"));
  EXPECT_EQ(r.str(), "name");
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_NO_THROW(r.finish());
}

TEST(Serde, BigEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  EXPECT_EQ(w.bytes(), (Bytes{0x01, 0x02, 0x03, 0x04}));
}

TEST(Serde, TruncationThrows) {
  Writer w;
  w.u64(42);
  const Bytes full = w.bytes();
  for (std::size_t len = 0; len < full.size(); ++len) {
    Reader r(BytesView(full).subspan(0, len));
    EXPECT_THROW((void)r.u64(), SerdeError) << len;
  }
}

TEST(Serde, VarBytesLengthLies) {
  Writer w;
  w.u32(1000);  // claims 1000 bytes follow
  w.raw(to_bytes("short"));
  Reader r(w.bytes());
  EXPECT_THROW((void)r.var_bytes(), SerdeError);
}

TEST(Serde, FinishRejectsTrailingBytes) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.bytes());
  (void)r.u8();
  EXPECT_THROW(r.finish(), SerdeError);
}

// Deterministic fuzz: every prefix truncation and 200 random bit flips of
// each message type must be handled cleanly. All protocol messages now
// carry the versioned header and parse into a StatusOr (never throwing);
// the throwing branch below is kept so the template still covers any
// future message that opts out of the Status contract.
template <typename Message>
void fuzz_message(const Message& msg, std::uint64_t seed) {
  constexpr bool kStatusParse =
      !std::is_same_v<decltype(Message::parse(BytesView{})), Message>;
  const Bytes wire = msg.serialize();

  for (std::size_t len = 0; len < wire.size(); ++len) {
    try {
      auto parsed = Message::parse(BytesView(wire).subspan(0, len));
      if constexpr (kStatusParse) {
        EXPECT_FALSE(parsed.is_ok()) << "truncation to " << len << " parsed";
      }
    } catch (const SerdeError&) {
      EXPECT_FALSE(kStatusParse) << "Status-based parse threw";
    }
  }

  Drbg rng(seed);
  for (int iter = 0; iter < 200; ++iter) {
    Bytes mutated = wire;
    const std::size_t pos = rng.below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    try {
      auto parsed = Message::parse(mutated);
      if constexpr (kStatusParse) {
        // A flip inside the 3-byte header must never parse as current-
        // version traffic.
        if (pos < kWireHeaderBytes) {
          EXPECT_FALSE(parsed.is_ok()) << pos;
        }
      }
    } catch (const SerdeError&) {
      EXPECT_FALSE(kStatusParse) << "Status-based parse threw";
    }
  }
}

TEST(SerdeFuzz, UploadMessageNeverCrashes) {
  UploadMessage up;
  up.user_id = 7;
  up.key_index = Bytes(32, 0xaa);
  up.chain_cipher = BigInt::from_decimal("987654321987654321");
  up.chain_cipher_bits = 96;
  up.auth_token = Bytes(80, 0xbb);
  fuzz_message(up, 1);
}

TEST(SerdeFuzz, QueryMessagesNeverCrash) {
  fuzz_message(QueryRequest{1, 2, 3}, 2);
  QueryResult res;
  res.query_id = 9;
  res.timestamp = 99;
  res.entries = {{1, Bytes(40, 1)}, {2, Bytes(40, 2)}};
  fuzz_message(res, 3);
}

TEST(SerdeFuzz, KeyServerMessagesNeverCrash) {
  fuzz_message(KeyRequest{5, BigInt::from_decimal("123456789000000")}, 4);
  fuzz_message(KeyResponse{BigInt::from_decimal("42424242424242")}, 5);
}

TEST(SerdeFuzz, SessionEnvelopesNeverCrash) {
  Envelope request;
  request.request_id = 0x123456789abcdef0ULL;
  request.body = Bytes(24, 0xcd);
  fuzz_message(request, 6);

  Envelope response;
  response.is_response = true;
  response.request_id = 7;
  response.status = StatusCode::kBudgetExhausted;
  response.body = to_bytes("budget spent");
  fuzz_message(response, 7);
}

TEST(SerdeFuzz, HugeClaimedLengthsRejectedWithoutAllocation) {
  // A length prefix of ~4 GiB on a tiny buffer must be rejected cleanly,
  // not allocated.
  Writer w;
  w.u16(kWireMagic);        // valid header (UploadMessage layout)
  w.u8(kWireVersion);
  w.u32(7);                 // user id
  w.u32(0xffffffff);        // key_index length: absurd
  EXPECT_EQ(UploadMessage::parse(w.bytes()).code(), StatusCode::kMalformedMessage);
}

}  // namespace
}  // namespace smatch
