// Dataset generator and statistics tests: the generated populations must
// reproduce the paper's Table II properties.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"
#include "datasets/stats.hpp"

namespace smatch {
namespace {

TEST(AttributeSpec, LandmarkHitsEntropyAndTopProb) {
  const auto spec = AttributeSpec::landmark("x", 1.45, 0.65);
  EXPECT_NEAR(spec.entropy(), 1.45, 0.08);
  EXPECT_NEAR(spec.probs[0], 0.65, 1e-9);
  double total = 0;
  for (double p : spec.probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(AttributeSpec, UniformHitsEntropy) {
  const auto spec = AttributeSpec::uniform("x", 5.34);
  EXPECT_NEAR(spec.entropy(), 5.34, 0.05);
}

TEST(AttributeSpec, RejectsUnreachableTargets) {
  EXPECT_THROW((void)AttributeSpec::landmark("x", 0.1, 0.5), Error);
  EXPECT_THROW((void)AttributeSpec::landmark("x", 1.0, 0.0), Error);
  EXPECT_THROW((void)AttributeSpec::landmark("x", 1.0, 1.0), Error);
}

struct TableIIRow {
  const char* name;
  std::size_t nodes;
  std::size_t attrs;
  double avg, max, min;
  std::size_t landmarks_06, landmarks_08;
};

class TableII : public ::testing::TestWithParam<TableIIRow> {};

TEST_P(TableII, GeneratedDatasetMatchesPaperStats) {
  const auto row = GetParam();
  DatasetSpec spec;
  if (std::string(row.name) == "Infocom06") spec = infocom06_spec();
  else if (std::string(row.name) == "Sigcomm09") spec = sigcomm09_spec();
  else spec = weibo_spec(20000);

  Drbg rng(99);
  const Dataset ds = Dataset::generate(spec, rng);
  EXPECT_EQ(ds.num_attributes(), row.attrs);
  if (std::string(row.name) != "Weibo") EXPECT_EQ(ds.num_users(), row.nodes);

  const DatasetStats stats = analyze_dataset(ds);
  // Quota sampling reproduces the spec closely; small datasets carry some
  // rounding noise, hence the tolerances.
  EXPECT_NEAR(stats.avg_entropy, row.avg, 0.35);
  EXPECT_NEAR(stats.max_entropy, row.max, 0.45);
  EXPECT_NEAR(stats.min_entropy, row.min, 0.25);
  EXPECT_EQ(stats.landmark_count(0.6), row.landmarks_06);
  EXPECT_EQ(stats.landmark_count(0.8), row.landmarks_08);
}

INSTANTIATE_TEST_SUITE_P(
    Rows, TableII,
    ::testing::Values(TableIIRow{"Infocom06", 78, 6, 3.10, 5.34, 0.82, 2, 1},
                      TableIIRow{"Sigcomm09", 76, 6, 3.40, 5.62, 0.86, 3, 1},
                      TableIIRow{"Weibo", 20000, 17, 5.14, 9.21, 0.54, 5, 3}));

TEST(Dataset, GenerateIsDeterministicPerSeed) {
  Drbg rng1(7), rng2(7), rng3(8);
  const auto spec = infocom06_spec();
  EXPECT_EQ(Dataset::generate(spec, rng1).profiles(), Dataset::generate(spec, rng2).profiles());
  EXPECT_NE(Dataset::generate(spec, rng1).profiles(), Dataset::generate(spec, rng3).profiles());
}

TEST(Dataset, ValuesStayInAlphabet) {
  Drbg rng(3);
  const auto spec = sigcomm09_spec();
  const Dataset ds = Dataset::generate(spec, rng);
  for (const auto& p : ds.profiles()) {
    ASSERT_EQ(p.size(), spec.attributes.size());
    for (std::size_t a = 0; a < p.size(); ++a) {
      EXPECT_LT(p[a], spec.attributes[a].num_values());
    }
  }
}

TEST(Dataset, ClusteredGenerationBoundsJitter) {
  Drbg rng(5);
  const auto spec = infocom06_spec();
  const Dataset ds = Dataset::generate_clustered(spec, rng, 8, 2);
  ASSERT_EQ(ds.communities().size(), ds.num_users());
  // Users in the same community must be within Chebyshev distance
  // 2*jitter of each other.
  for (std::size_t i = 0; i < ds.num_users(); ++i) {
    for (std::size_t j = i + 1; j < ds.num_users(); ++j) {
      if (ds.communities()[i] != ds.communities()[j]) continue;
      std::uint32_t dist = 0;
      for (std::size_t a = 0; a < ds.num_attributes(); ++a) {
        const auto d = ds.profile(i)[a] > ds.profile(j)[a]
                           ? ds.profile(i)[a] - ds.profile(j)[a]
                           : ds.profile(j)[a] - ds.profile(i)[a];
        dist = std::max(dist, d);
      }
      EXPECT_LE(dist, 4u);
    }
  }
}

TEST(Dataset, ClusteredRejectsZeroClusters) {
  Drbg rng(6);
  EXPECT_THROW((void)Dataset::generate_clustered(infocom06_spec(), rng, 0, 1), Error);
}

TEST(Stats, SampleEntropyKnownValues) {
  EXPECT_DOUBLE_EQ(sample_entropy({}), 0.0);
  EXPECT_DOUBLE_EQ(sample_entropy({5, 5, 5}), 0.0);
  EXPECT_NEAR(sample_entropy({1, 2}), 1.0, 1e-12);
  EXPECT_NEAR(sample_entropy({1, 2, 3, 4}), 2.0, 1e-12);
}

TEST(Stats, LandmarkDetection) {
  DatasetSpec spec;
  spec.name = "t";
  spec.num_users = 100;
  spec.attributes = {AttributeSpec::landmark("lm", 0.9, 0.85),
                     AttributeSpec::uniform("u", 4.0)};
  Drbg rng(9);
  const Dataset ds = Dataset::generate(spec, rng);
  const auto stats = analyze_dataset(ds);
  EXPECT_TRUE(stats.attributes[0].is_landmark(0.6));
  EXPECT_TRUE(stats.attributes[0].is_landmark(0.8));
  EXPECT_FALSE(stats.attributes[1].is_landmark(0.6));
  EXPECT_EQ(stats.landmark_count(0.8), 1u);
}

TEST(Stats, AnalyzeAttributeOutOfRangeThrows) {
  Drbg rng(10);
  const Dataset ds = Dataset::generate(infocom06_spec(), rng);
  EXPECT_THROW((void)analyze_attribute(ds, 99), Error);
}

}  // namespace
}  // namespace smatch
