// SimChannel / LinkModel tests: byte accounting, per-kind breakdown, and
// the 802.11n transfer-time model used by the communication-cost figures.
#include <gtest/gtest.h>

#include "net/channel.hpp"

namespace smatch {
namespace {

TEST(LinkModel, TransferTimeDecomposes) {
  const LinkModel link{.bandwidth_mbps = 53.0, .latency_ms = 2.0};
  // Zero payload: pure latency.
  EXPECT_DOUBLE_EQ(link.transfer_seconds(0), 0.002);
  // 53 Mbit at 53 Mbps = 1 second + latency.
  const std::size_t bytes = 53 * 1000 * 1000 / 8;
  EXPECT_NEAR(link.transfer_seconds(bytes), 1.002, 1e-9);
}

TEST(SimChannel, CountsBothDirectionsIndependently) {
  SimChannel ch;
  (void)ch.send_to_server(Bytes(100, 0));
  (void)ch.send_to_server(Bytes(50, 0));
  (void)ch.send_to_client(Bytes(7, 0));
  EXPECT_EQ(ch.uplink().messages, 2u);
  EXPECT_EQ(ch.uplink().bytes, 150u);
  EXPECT_EQ(ch.downlink().messages, 1u);
  EXPECT_EQ(ch.downlink().bytes, 7u);
  EXPECT_EQ(ch.total_bytes(), 157u);
}

TEST(SimChannel, AccumulatesSimulatedTime) {
  SimChannel ch(LinkModel{.bandwidth_mbps = 1.0, .latency_ms = 10.0});
  const double t1 = ch.send_to_server(Bytes(1000, 0));
  const double t2 = ch.send_to_server(Bytes(1000, 0));
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_NEAR(ch.uplink().sim_seconds, t1 + t2, 1e-12);
  // 8000 bits at 1 Mbps = 8 ms, plus 10 ms latency.
  EXPECT_NEAR(t1, 0.018, 1e-9);
}

TEST(SimChannel, KindsBreakDownTraffic) {
  SimChannel ch;
  (void)ch.send_to_server(Bytes(10, 0), MessageKind::kUpload);
  (void)ch.send_to_server(Bytes(20, 0), MessageKind::kUpload);
  (void)ch.send_to_server(Bytes(5, 0), MessageKind::kQuery);
  (void)ch.send_to_client(Bytes(9, 0), MessageKind::kResult);
  (void)ch.send_to_client(Bytes(3, 0));  // unclassified: counted under kOther
  EXPECT_EQ(ch.bytes_of(MessageKind::kUpload), 30u);
  EXPECT_EQ(ch.bytes_of(MessageKind::kQuery), 5u);
  EXPECT_EQ(ch.bytes_of(MessageKind::kResult), 9u);
  EXPECT_EQ(ch.bytes_of(MessageKind::kOther), 3u);
  EXPECT_EQ(ch.bytes_of(MessageKind::kAuth), 0u);
  EXPECT_EQ(ch.bytes_of(MessageKind::kOprf), 0u);
  EXPECT_EQ(ch.total_bytes(), 47u);
  // Every kind has a stable printable name for the benchmark tables.
  std::uint64_t sum = 0;
  for (std::size_t k = 0; k < kNumMessageKinds; ++k) {
    EXPECT_NE(to_string(static_cast<MessageKind>(k)), "invalid");
    sum += ch.bytes_by_kind()[k];
  }
  EXPECT_EQ(sum, ch.total_bytes());
}

TEST(SimChannel, CountsMessagesPerKind) {
  SimChannel ch;
  (void)ch.send_to_server(Bytes(10, 0), MessageKind::kUpload);
  (void)ch.send_to_server(Bytes(20, 0), MessageKind::kUpload);
  (void)ch.send_to_client(Bytes(9, 0), MessageKind::kResult);
  (void)ch.send_to_client(Bytes(3, 0));
  EXPECT_EQ(ch.messages_of(MessageKind::kUpload), 2u);
  EXPECT_EQ(ch.messages_of(MessageKind::kResult), 1u);
  EXPECT_EQ(ch.messages_of(MessageKind::kOther), 1u);
  EXPECT_EQ(ch.messages_of(MessageKind::kQuery), 0u);
  // Per-kind counts partition the direction totals.
  std::uint64_t sum = 0;
  for (const std::uint64_t m : ch.messages_by_kind()) sum += m;
  EXPECT_EQ(sum, ch.uplink().messages + ch.downlink().messages);
  // Each recorded message contributes one simulated-latency sample.
  EXPECT_EQ(ch.latency_of(MessageKind::kUpload).count, 2u);
  EXPECT_GT(ch.latency_of(MessageKind::kUpload).p50(), 0u);
  EXPECT_EQ(ch.latency_of(MessageKind::kQuery).count, 0u);
}

TEST(SimChannel, ResetClearsEverything) {
  SimChannel ch;
  (void)ch.send_to_server(Bytes(10, 0), MessageKind::kAuth);
  ch.reset();
  EXPECT_EQ(ch.total_bytes(), 0u);
  EXPECT_EQ(ch.uplink().messages, 0u);
  for (const std::uint64_t b : ch.bytes_by_kind()) EXPECT_EQ(b, 0u);
  for (const std::uint64_t m : ch.messages_by_kind()) EXPECT_EQ(m, 0u);
  EXPECT_EQ(ch.latency_of(MessageKind::kAuth).count, 0u);
}

}  // namespace
}  // namespace smatch
