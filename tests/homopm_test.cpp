// homoPM baseline tests: the Paillier-based matching must produce the
// same nearest-neighbour answers as a plaintext computation.
#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/homopm.hpp"
#include "common/error.hpp"
#include "common/serde.hpp"
#include "crypto/drbg.hpp"

namespace smatch {
namespace {

HomoPmParams small_params() {
  HomoPmParams p;
  p.plaintext_bits = 32;  // modulus clamps to 1024 anyway; fast enough
  return p;
}

const PaillierKeyPair& cached_keys() {
  static const PaillierKeyPair kp = [] {
    Drbg rng(31337);
    return PaillierKeyPair::generate(rng, small_params().modulus_bits());
  }();
  return kp;
}

std::uint64_t squared_l2(const Profile& a, const Profile& b) {
  std::uint64_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::int64_t diff = static_cast<std::int64_t>(a[i]) - static_cast<std::int64_t>(b[i]);
    d += static_cast<std::uint64_t>(diff * diff);
  }
  return d;
}

TEST(HomoPm, TopKMatchesPlaintextRanking) {
  Drbg rng(1);
  const Profile querier_profile = {10, 20, 30, 40};
  std::map<UserId, Profile> others = {
      {2, {11, 21, 29, 41}},   // close
      {3, {50, 60, 70, 80}},   // far
      {4, {10, 20, 30, 42}},   // closest
      {5, {15, 25, 35, 45}},   // medium
      {6, {100, 1, 200, 3}},   // farthest
  };

  HomoPmServer server(small_params());
  for (const auto& [id, p] : others) server.ingest(id, p);
  server.ingest(1, querier_profile);

  HomoPmQuerier querier(querier_profile, small_params(), cached_keys());
  const HomoPmQuery query = querier.make_query(rng);
  const HomoPmResponse resp = server.evaluate(1, query, rng);
  EXPECT_EQ(resp.enc_distances.size(), others.size());

  const std::vector<UserId> top2 = querier.rank(resp, 2);
  // Plaintext ground truth.
  std::vector<std::pair<std::uint64_t, UserId>> truth;
  for (const auto& [id, p] : others) truth.emplace_back(squared_l2(querier_profile, p), id);
  std::sort(truth.begin(), truth.end());
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], truth[0].second);
  EXPECT_EQ(top2[1], truth[1].second);
}

TEST(HomoPm, BlindingPreservesRankButHidesDistance) {
  Drbg rng(2);
  const Profile qp = {1, 2, 3, 4};
  HomoPmServer server(small_params());
  server.ingest(2, {1, 2, 3, 5});
  server.ingest(3, {9, 9, 9, 9});

  HomoPmQuerier querier(qp, small_params(), cached_keys());
  const auto query = querier.make_query(rng);
  const auto resp = server.evaluate(1, query, rng);

  // Decrypted values are blinded: they exceed any true squared distance.
  for (const auto& [id, enc] : resp.enc_distances) {
    const BigInt blinded = cached_keys().decrypt(enc);
    EXPECT_TRUE(blinded > BigInt{std::uint64_t{1} << 32});
  }
  // Yet the ranking is still correct.
  EXPECT_EQ(querier.rank(resp, 1), std::vector<UserId>{2});
}

TEST(HomoPm, ServerCountsModularOps) {
  Drbg rng(3);
  const Profile qp = {1, 2, 3, 4};
  HomoPmServer server(small_params());
  for (UserId id = 2; id <= 11; ++id) server.ingest(id, {id, id, id, id});
  HomoPmQuerier querier(qp, small_params(), cached_keys());
  const auto query = querier.make_query(rng);
  EXPECT_EQ(server.modular_ops(), 0u);
  (void)server.evaluate(1, query, rng);
  // 10 candidates x (2 per attribute x 4 attributes + 2).
  EXPECT_EQ(server.modular_ops(), 10u * (2 * 4 + 2));
}

TEST(HomoPm, QueryWireSizeScalesWithModulus) {
  HomoPmParams small = small_params();
  HomoPmParams big;
  big.plaintext_bits = 1024;
  EXPECT_GT(big.modulus_bits(), small.modulus_bits());

  HomoPmQuery q;
  q.enc_neg_2a.resize(6);
  EXPECT_GT(q.wire_bytes(big), q.wire_bytes(small));
  // d+1 ciphertexts of 2n bits plus the modulus itself.
  const std::size_t nb = (small.modulus_bits() + 7) / 8;
  EXPECT_EQ(q.wire_bytes(small), nb + 7 * 2 * nb);
}

TEST(HomoPm, WireRoundTripPreservesMatching) {
  // Serialize the query and response across a (virtual) wire; the
  // protocol must still produce the same ranking.
  Drbg rng(6);
  const Profile qp = {3, 1, 4, 1};
  HomoPmServer server(small_params());
  server.ingest(2, {3, 1, 4, 2});
  server.ingest(3, {50, 60, 70, 80});

  HomoPmQuerier querier(qp, small_params(), cached_keys());
  const HomoPmQuery query = HomoPmQuery::parse(querier.make_query(rng).serialize());
  const HomoPmResponse resp =
      HomoPmResponse::parse(server.evaluate(1, query, rng).serialize());
  EXPECT_EQ(querier.rank(resp, 1), std::vector<UserId>{2});
}

TEST(HomoPm, WireParsersRejectGarbage) {
  EXPECT_THROW((void)HomoPmQuery::parse(Bytes{1, 2}), SerdeError);
  EXPECT_THROW((void)HomoPmResponse::parse(Bytes{9}), SerdeError);
  // Absurd counts must be rejected before allocation.
  Writer w;
  w.u32(0xffffffff);
  EXPECT_THROW((void)HomoPmResponse::parse(w.bytes()), SerdeError);
}

TEST(HomoPm, MismatchedArityThrows) {
  Drbg rng(4);
  HomoPmServer server(small_params());
  server.ingest(2, {1, 2, 3});  // 3 attributes
  HomoPmQuerier querier({1, 2, 3, 4}, small_params(), cached_keys());
  const auto query = querier.make_query(rng);
  EXPECT_THROW((void)server.evaluate(1, query, rng), ProtocolError);
}

TEST(HomoPm, ExcludesQuerierFromCandidates) {
  Drbg rng(5);
  HomoPmServer server(small_params());
  server.ingest(1, {1, 1, 1, 1});
  server.ingest(2, {2, 2, 2, 2});
  HomoPmQuerier querier({1, 1, 1, 1}, small_params(), cached_keys());
  const auto resp = server.evaluate(1, querier.make_query(rng), rng);
  ASSERT_EQ(resp.enc_distances.size(), 1u);
  EXPECT_EQ(resp.enc_distances[0].first, 2u);
}

}  // namespace
}  // namespace smatch
