// Admin-plane end-to-end tests: a live NetServer with an admin port,
// probed over real HTTP — /healthz, /metrics (lint-clean exposition),
// /metrics.json, /trace, /statusz (flight recorder) — plus the
// slow-request exemplar capture path and the no-admin default.
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "net/admin.hpp"
#include "net/server.hpp"
#include "net/tcp_transport.hpp"
#include "obs/exemplar.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace smatch {
namespace {

using namespace std::chrono_literals;

/// An echoing dispatcher: every kind answers with the request body.
FrameDispatcher echo_dispatcher() {
  FrameDispatcher dispatcher;
  dispatcher.register_handler(MessageKind::kOther, [](BytesView body) {
    return StatusOr<Bytes>(Bytes(body.begin(), body.end()));
  });
  return dispatcher;
}

/// Runs `calls` echo RPCs against the server's TCP port.
void run_echo_calls(std::uint16_t port, std::size_t calls) {
  auto conn = TcpTransport::connect("127.0.0.1", port, 2000ms);
  ASSERT_TRUE(conn.is_ok()) << conn.status().message();
  SessionClient client(**conn, {}, /*seed=*/0xadffee);
  const Bytes body = {1, 2, 3, 4};
  for (std::size_t i = 0; i < calls; ++i) {
    StatusOr<Bytes> reply = client.call(MessageKind::kOther, body);
    ASSERT_TRUE(reply.is_ok()) << reply.status().message();
    EXPECT_EQ(*reply, body);
  }
  (void)(*conn)->close();
}

TEST(Admin, HealthMetricsTraceStatuszEndToEnd) {
  obs::TraceBuffer::instance().begin();
  NetServer server(echo_dispatcher());
  ServerConfig config;
  config.tcp_port = 0;
  config.admin_port = 0;
  ASSERT_TRUE(server.start(config).is_ok());
  ASSERT_NE(server.admin_port(), 0);
  ASSERT_NE(server.admin(), nullptr);

  run_echo_calls(server.port(), 8);

  // /healthz
  StatusOr<std::string> health =
      http_get("127.0.0.1", server.admin_port(), "/healthz");
  ASSERT_TRUE(health.is_ok()) << health.status().message();
  EXPECT_EQ(*health, "ok\n");

  // /metrics: lint-clean exposition that covers the net layer and the
  // trace-plane self-metrics satellite.
  StatusOr<std::string> metrics =
      http_get("127.0.0.1", server.admin_port(), "/metrics");
  ASSERT_TRUE(metrics.is_ok()) << metrics.status().message();
  std::string lint_error;
  EXPECT_TRUE(obs::lint_prometheus_text(*metrics, &lint_error)) << lint_error;
  EXPECT_NE(metrics->find("smatch_net_calls_total"), std::string::npos);
  EXPECT_NE(metrics->find("smatch_obs_trace_dropped_total"), std::string::npos);
  EXPECT_NE(metrics->find("smatch_obs_exemplar_occupancy"), std::string::npos);
  EXPECT_NE(metrics->find("smatch_net_rtt_ns_bucket"), std::string::npos);

  // The exposition payload round-trips through the histogram parser.
  obs::HistogramSnapshot rtt;
  ASSERT_TRUE(obs::parse_prometheus_histogram(*metrics, "smatch_net_rtt_ns", &rtt));
  EXPECT_GE(rtt.count, 8u);
  EXPECT_GT(rtt.p99(), 0u);

  // /metrics.json
  StatusOr<std::string> json =
      http_get("127.0.0.1", server.admin_port(), "/metrics.json");
  ASSERT_TRUE(json.is_ok());
  EXPECT_EQ(json->front(), '{');
  EXPECT_NE(json->find("smatch_net_calls_total"), std::string::npos);

  // /trace: valid Chrome trace with client and server spans.
  StatusOr<std::string> trace =
      http_get("127.0.0.1", server.admin_port(), "/trace");
  ASSERT_TRUE(trace.is_ok());
  std::string trace_error;
  std::size_t distinct = 0;
  ASSERT_TRUE(obs::validate_chrome_trace(*trace, &trace_error, &distinct))
      << trace_error;
  EXPECT_NE(trace->find("net.call"), std::string::npos);
  EXPECT_NE(trace->find("net.dispatch"), std::string::npos);
  EXPECT_NE(trace->find("\"trace\":\""), std::string::npos);

  // /statusz: build info, the net-server section, flight-recorder events.
  StatusOr<std::string> statusz =
      http_get("127.0.0.1", server.admin_port(), "/statusz");
  ASSERT_TRUE(statusz.is_ok());
  EXPECT_NE(statusz->find("uptime_ms:"), std::string::npos);
  EXPECT_NE(statusz->find("== net server =="), std::string::npos);
  EXPECT_NE(statusz->find("== flight recorder =="), std::string::npos);
  EXPECT_NE(statusz->find("conn_accepted"), std::string::npos);
  EXPECT_NE(statusz->find("server_start"), std::string::npos);

  // Unknown path -> HTTP 404 surfaces as a non-200 error.
  StatusOr<std::string> missing =
      http_get("127.0.0.1", server.admin_port(), "/nope");
  EXPECT_FALSE(missing.is_ok());

  server.stop();
  obs::TraceBuffer::instance().end();
}

TEST(Admin, SlowRequestExemplarCapturesStitchedSpanTree) {
  obs::ExemplarRecorder::instance().clear();
  NetServer server(echo_dispatcher());
  ServerConfig config;
  config.tcp_port = 0;
  config.admin_port = 0;
  config.slow_request_threshold_ns = 1;  // every call is "slow"
  ASSERT_TRUE(server.start(config).is_ok());

  run_echo_calls(server.port(), 3);

  auto& recorder = obs::ExemplarRecorder::instance();
  ASSERT_GE(recorder.occupancy(), 1u);
  const std::vector<obs::Exemplar> exemplars = recorder.exemplars();
  // Every exemplar's spans share the trace id, and the tree spans both
  // sides of the wire: the client's net.call and the server's net.handle.
  bool saw_call = false;
  bool saw_handle = false;
  for (const obs::Exemplar& ex : exemplars) {
    ASSERT_NE(ex.trace_id, 0u);
    EXPECT_GE(ex.total_ns, 1u);
    for (const obs::TraceEvent& span : ex.spans) {
      EXPECT_EQ(span.trace_id, ex.trace_id);
      if (std::string(span.name) == "net.call") saw_call = true;
      if (std::string(span.name) == "net.handle") saw_handle = true;
    }
  }
  EXPECT_TRUE(saw_call);
  EXPECT_TRUE(saw_handle);

  // /trace?exemplars=1 renders them as a valid Chrome trace.
  StatusOr<std::string> trace =
      http_get("127.0.0.1", server.admin_port(), "/trace?exemplars=1");
  ASSERT_TRUE(trace.is_ok());
  std::string error;
  std::size_t distinct = 0;
  ASSERT_TRUE(obs::validate_chrome_trace(*trace, &error, &distinct)) << error;
  EXPECT_NE(trace->find("net.call"), std::string::npos);
  EXPECT_NE(trace->find("exemplar_total_ns"), std::string::npos);

  server.stop();
  obs::ExemplarRecorder::instance().disarm();
}

TEST(Admin, FastRequestsBelowThresholdAreNotCaptured) {
  obs::ExemplarRecorder::instance().clear();
  obs::ExemplarRecorder::instance().arm(std::uint64_t{3600} * 1000000000ull);
  NetServer server(echo_dispatcher());
  ServerConfig config;
  config.tcp_port = 0;
  ASSERT_TRUE(server.start(config).is_ok());
  run_echo_calls(server.port(), 4);
  EXPECT_EQ(obs::ExemplarRecorder::instance().occupancy(), 0u);
  server.stop();
  obs::ExemplarRecorder::instance().disarm();
}

TEST(Admin, NoAdminSurfaceUnlessConfigured) {
  NetServer server(echo_dispatcher());
  ServerConfig config;
  config.tcp_port = 0;
  ASSERT_TRUE(server.start(config).is_ok());
  EXPECT_EQ(server.admin_port(), 0);
  EXPECT_EQ(server.admin(), nullptr);
  server.stop();
}

TEST(Admin, StatuszSectionsAndRefreshHooksAreExtensible) {
  NetServer server(echo_dispatcher());
  ServerConfig config;
  config.admin_port = 0;
  ASSERT_TRUE(server.start(config).is_ok());
  server.admin()->add_status_section("custom",
                                     [] { return std::string("hello-section\n"); });
  server.admin()->set_refresh([] {
    obs::Registry::global().publish_value("admin_test_refreshed_total", 1.0);
  });
  StatusOr<std::string> statusz =
      http_get("127.0.0.1", server.admin_port(), "/statusz");
  ASSERT_TRUE(statusz.is_ok());
  EXPECT_NE(statusz->find("== custom =="), std::string::npos);
  EXPECT_NE(statusz->find("hello-section"), std::string::npos);
  StatusOr<std::string> metrics =
      http_get("127.0.0.1", server.admin_port(), "/metrics");
  ASSERT_TRUE(metrics.is_ok());
  EXPECT_NE(metrics->find("admin_test_refreshed_total"), std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace smatch
