// Durable-store tests: on-disk framing, WAL replay across torn tails and
// flipped bits, snapshot/WAL dedup after a simulated crash, byte-identical
// engine recovery, cold-group eviction under a memory budget, and budget
// persistence in the key service. The concurrency tests are meant to also
// run under TSan (scripts/ci.sh builds this target with
// -DSMATCH_SANITIZE=thread). The kill -9 variant of the recovery story
// lives in tests/store_crash_harness.cpp, driven by scripts/ci.sh.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/serde.hpp"

#include "core/key_server.hpp"
#include "core/server.hpp"
#include "crypto/drbg.hpp"
#include "store/format.hpp"
#include "store/store.hpp"
#include "store/wal.hpp"

namespace smatch {
namespace {

namespace fs = std::filesystem;

/// A unique writable directory, removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("smatch_store_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

Bytes file_bytes(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_bytes(const fs::path& p, BytesView data) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

/// Deterministic synthetic upload: everything derives from the user id,
/// so any process (including the crash harness) can regenerate it.
UploadMessage synthetic_upload(UserId id, std::size_t num_groups = 4) {
  UploadMessage up;
  up.user_id = id;
  up.key_index.assign(32, static_cast<std::uint8_t>(id % num_groups));
  up.key_index[1] = static_cast<std::uint8_t>((id % num_groups) * 37 + 1);
  up.chain_cipher = BigInt::from_decimal(std::to_string(1000000007ull * id + 13));
  up.chain_cipher_bits = 64;
  Drbg rng(id + 1);
  up.auth_token = rng.bytes(16);
  return up;
}

QueryRequest query_for(UserId id) {
  QueryRequest q;
  q.query_id = id * 3 + 1;
  q.timestamp = id + 100;
  q.user_id = id;
  return q;
}

store::StoreConfig store_config(const TempDir& dir) {
  store::StoreConfig cfg;
  cfg.directory = dir.str();
  cfg.fsync = store::FsyncPolicy::kNever;  // tests don't need platter latency
  return cfg;
}

// ---------------------------------------------------------------- format

TEST(StoreFormat, FileHeaderRoundTripsAndRejectsDamage) {
  const Bytes header = store::encode_file_header(store::FileKind::kSnapshot, 5);
  ASSERT_EQ(header.size(), store::kFileHeaderBytes);
  std::uint32_t shard = 0;
  EXPECT_TRUE(
      store::check_file_header(header, store::FileKind::kSnapshot, &shard).is_ok());
  EXPECT_EQ(shard, 5u);
  // Wrong kind.
  EXPECT_EQ(store::check_file_header(header, store::FileKind::kWal).code(),
            StatusCode::kMalformedMessage);
  // Future version.
  Bytes versioned = header;
  versioned[2] = store::kStoreVersion + 1;
  EXPECT_EQ(store::check_file_header(versioned, store::FileKind::kSnapshot).code(),
            StatusCode::kUnsupportedVersion);
  // Truncated.
  EXPECT_EQ(store::check_file_header(BytesView(header).subspan(0, 7),
                                     store::FileKind::kSnapshot)
                .code(),
            StatusCode::kMalformedMessage);
}

TEST(StoreFormat, RecordsScanBackInOrder) {
  Bytes log;
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    Bytes payload(seq, static_cast<std::uint8_t>(seq));
    append(log, store::encode_record(store::RecordType::kUpload, seq, payload));
  }
  store::RecordScanner scanner(log);
  std::uint64_t expect = 1;
  while (auto rec = scanner.next()) {
    EXPECT_EQ(rec->seq, expect);
    EXPECT_EQ(rec->payload.size(), expect);
    ++expect;
  }
  EXPECT_EQ(expect, 6u);
  EXPECT_EQ(scanner.end(), store::ScanEnd::kClean);
  EXPECT_EQ(scanner.offset(), log.size());
}

TEST(StoreFormat, TornTailStopsScanCleanly) {
  Bytes log = store::encode_record(store::RecordType::kUpload, 1, Bytes(8, 0xAA));
  const std::size_t whole = log.size();
  append(log, store::encode_record(store::RecordType::kUpload, 2, Bytes(8, 0xBB)));
  // Chop the second record anywhere: mid-length, mid-body, mid-crc.
  for (const std::size_t cut : {whole + 2, whole + 10, log.size() - 1}) {
    store::RecordScanner scanner(BytesView(log).subspan(0, cut));
    ASSERT_TRUE(scanner.next().has_value());
    EXPECT_FALSE(scanner.next().has_value());
    EXPECT_EQ(scanner.end(), store::ScanEnd::kTornTail) << "cut=" << cut;
    EXPECT_EQ(scanner.offset(), whole);
  }
}

TEST(StoreFormat, FlippedBitStopsScanAtCrcMismatch) {
  Bytes log = store::encode_record(store::RecordType::kUpload, 1, Bytes(8, 0xAA));
  append(log, store::encode_record(store::RecordType::kDelete, 2, Bytes(4, 0xBB)));
  Bytes flipped = log;
  flipped[log.size() - 10] ^= 0x01;  // inside the second record's body
  store::RecordScanner scanner(flipped);
  ASSERT_TRUE(scanner.next().has_value());
  EXPECT_FALSE(scanner.next().has_value());
  EXPECT_EQ(scanner.end(), store::ScanEnd::kCrcMismatch);
}

TEST(StoreFormat, AbsurdLengthStopsScanAsBadRecord) {
  Bytes log = {0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x00};
  store::RecordScanner scanner(log);
  EXPECT_FALSE(scanner.next().has_value());
  EXPECT_EQ(scanner.end(), store::ScanEnd::kBadRecord);
}

// ------------------------------------------------------------------- wal

TEST(WalFile, AppendReplayRoundTrip) {
  TempDir dir("wal_roundtrip");
  store::WalFile wal;
  ASSERT_TRUE(wal.open((dir.path / "wal.log").string(), 3,
                       store::FsyncPolicy::kNever, 0)
                  .is_ok());
  for (int i = 1; i <= 10; ++i) {
    const auto seq = wal.append(store::RecordType::kUpload,
                                Bytes(static_cast<std::size_t>(i), 0x42));
    ASSERT_TRUE(seq.is_ok());
    EXPECT_EQ(*seq, static_cast<std::uint64_t>(i));
  }
  std::vector<std::uint64_t> seen;
  const auto stats = wal.replay(0, [&](const store::StoreRecord& rec) {
    seen.push_back(rec.seq);
    return Status::ok();
  });
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats->records, 10u);
  EXPECT_EQ(stats->torn_tail + stats->crc_stopped, 0u);
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(wal.next_seq(), 11u);
}

TEST(WalFile, SequenceNumbersSurviveResetAndReopen) {
  TempDir dir("wal_seq");
  const std::string path = (dir.path / "wal.log").string();
  {
    store::WalFile wal;
    ASSERT_TRUE(wal.open(path, 0, store::FsyncPolicy::kAlways, 0).is_ok());
    ASSERT_TRUE(wal.append(store::RecordType::kUpload, Bytes{1}).is_ok());
    ASSERT_TRUE(wal.append(store::RecordType::kUpload, Bytes{2}).is_ok());
    ASSERT_TRUE(wal.reset().is_ok());
    // Never reused: the next append continues the history.
    const auto seq = wal.append(store::RecordType::kUpload, Bytes{3});
    ASSERT_TRUE(seq.is_ok());
    EXPECT_EQ(*seq, 3u);
  }
  store::WalFile reopened;
  ASSERT_TRUE(reopened.open(path, 0, store::FsyncPolicy::kNever, 0).is_ok());
  const auto stats = reopened.replay(0, [](const store::StoreRecord&) {
    return Status::ok();
  });
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats->records, 1u);
  EXPECT_EQ(reopened.next_seq(), 4u);
}

TEST(WalFile, RejectsForeignShardHeader) {
  TempDir dir("wal_shard");
  const std::string path = (dir.path / "wal.log").string();
  {
    store::WalFile wal;
    ASSERT_TRUE(wal.open(path, 1, store::FsyncPolicy::kNever, 0).is_ok());
  }
  store::WalFile other;
  EXPECT_EQ(other.open(path, 2, store::FsyncPolicy::kNever, 0).code(),
            StatusCode::kMalformedMessage);
}

TEST(WalFile, TruncatedTailReplaysPrefixThenExtends) {
  TempDir dir("wal_torn");
  const std::string path = (dir.path / "wal.log").string();
  {
    store::WalFile wal;
    ASSERT_TRUE(wal.open(path, 0, store::FsyncPolicy::kNever, 0).is_ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(wal.append(store::RecordType::kUpload, Bytes(16, 0x11)).is_ok());
    }
  }
  // kill -9 mid-append: the tail record is half there.
  Bytes raw = file_bytes(path);
  raw.resize(raw.size() - 7);
  write_bytes(path, raw);

  store::WalFile wal;
  ASSERT_TRUE(wal.open(path, 0, store::FsyncPolicy::kNever, 0).is_ok());
  const auto stats = wal.replay(0, [](const store::StoreRecord&) {
    return Status::ok();
  });
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats->records, 2u);
  EXPECT_EQ(stats->torn_tail, 1u);
  // The counter fast-forwarded past the survivors; appends keep working.
  const auto seq = wal.append(store::RecordType::kUpload, Bytes{9});
  ASSERT_TRUE(seq.is_ok());
  EXPECT_EQ(*seq, 3u);
}

// ----------------------------------------------------------- ProfileStore

TEST(ProfileStore, ManifestPinsShardCountAcrossReopen) {
  TempDir dir("manifest");
  store::StoreConfig cfg = store_config(dir);
  cfg.wal_shards = 3;
  {
    auto st = store::ProfileStore::open(cfg, 8);
    ASSERT_TRUE(st.is_ok());
    EXPECT_EQ((*st)->shards(), 3u);
  }
  // A different config cannot re-shard an existing store.
  cfg.wal_shards = 7;
  auto st = store::ProfileStore::open(cfg, 8);
  ASSERT_TRUE(st.is_ok());
  EXPECT_EQ((*st)->shards(), 3u);
}

TEST(ProfileStore, ReplayDedupsWalRecordsAfterCrashBetweenSnapshotAndReset) {
  TempDir dir("dedup");
  store::StoreConfig cfg = store_config(dir);
  cfg.wal_shards = 1;
  const fs::path wal_path = dir.path / "shard-0" / "wal.log";

  {
    auto opened = store::ProfileStore::open(cfg, 1);
    ASSERT_TRUE(opened.is_ok());
    auto& store = **opened;
    for (std::uint8_t i = 1; i <= 4; ++i) {
      ASSERT_TRUE(
          store.append(0, store::RecordType::kUpload, Bytes(4, i)).is_ok());
    }
    // Simulate a crash between snapshot rename and WAL truncation: commit
    // the checkpoint, then put the pre-checkpoint WAL back.
    const Bytes pre_checkpoint_wal = file_bytes(wal_path);
    auto cp = store.begin_checkpoint();
    cp->add(0, store::RecordType::kUpload, Bytes(4, 0x01));
    cp->add(0, store::RecordType::kUpload, Bytes(4, 0x02));
    cp->add(0, store::RecordType::kUpload, Bytes(4, 0x03));
    cp->add(0, store::RecordType::kUpload, Bytes(4, 0x04));
    ASSERT_TRUE(cp->commit().is_ok());
    write_bytes(wal_path, pre_checkpoint_wal);
  }

  auto reopened = store::ProfileStore::open(cfg, 1);
  ASSERT_TRUE(reopened.is_ok());
  std::size_t applied = 0;
  ASSERT_TRUE((*reopened)
                  ->replay(0,
                           [&](const store::StoreRecord&) {
                             ++applied;
                             return Status::ok();
                           })
                  .is_ok());
  // 4 from the snapshot; the 4 stale WAL records are seq-deduped, not
  // applied twice (which would matter for deletes).
  EXPECT_EQ(applied, 4u);
  EXPECT_EQ((*reopened)->metrics().replay_skipped, 4u);
}

TEST(ProfileStore, PageRoundTripAndDamageDetection) {
  TempDir dir("pages");
  auto opened = store::ProfileStore::open(store_config(dir), 1);
  ASSERT_TRUE(opened.is_ok());
  auto& store = **opened;
  const Bytes key(32, 0x7E);
  const Bytes payload(100, 0x5C);
  ASSERT_TRUE(store.write_page(key, payload).is_ok());
  auto back = store.read_page(key);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, payload);

  // Flip one payload bit on disk: the page must be rejected, not served.
  const fs::path page = dir.path / "pages" / (to_hex(key) + ".pg");
  Bytes raw = file_bytes(page);
  raw[raw.size() - 10] ^= 0x80;
  write_bytes(page, raw);
  EXPECT_EQ(store.read_page(key).code(), StatusCode::kMalformedMessage);

  store.drop_page(key);
  EXPECT_FALSE(store.read_page(key).is_ok());
}

TEST(ProfileStore, StalePagesAreDiscardedAtOpen) {
  TempDir dir("stale_pages");
  const Bytes key(32, 0x11);
  {
    auto st = store::ProfileStore::open(store_config(dir), 1);
    ASSERT_TRUE(st.is_ok());
    ASSERT_TRUE((*st)->write_page(key, Bytes(8, 1)).is_ok());
  }
  auto st = store::ProfileStore::open(store_config(dir), 1);
  ASSERT_TRUE(st.is_ok());
  // Pages are cache, not truth: a reopen starts clean.
  EXPECT_FALSE((*st)->read_page(key).is_ok());
}

// ----------------------------------------------------- MatchServer + store

/// kNN answers of `server` for every user in [1, n], serialized.
std::vector<Bytes> answers(MatchServer& server, UserId n, std::size_t k = 4) {
  std::vector<Bytes> out;
  for (UserId id = 1; id <= n; ++id) {
    auto result = server.match(query_for(id), k);
    if (result.is_ok()) {
      out.push_back(result->serialize());
    } else {
      out.push_back(to_bytes("error:" + std::to_string(static_cast<int>(result.code()))));
    }
  }
  return out;
}

TEST(MatchServerStore, RestartAnswersKnnByteIdentically) {
  TempDir dir("engine_restart");
  constexpr UserId kUsers = 60;
  std::vector<Bytes> before;
  {
    MatchServer server(ServerOptions{.num_shards = 4});
    ASSERT_TRUE(server.attach_store(store_config(dir)).is_ok());
    for (UserId id = 1; id <= kUsers; ++id) {
      ASSERT_TRUE(server.ingest(synthetic_upload(id)).is_ok());
    }
    // Re-uploads move a few users between groups — replay must preserve
    // last-writer-wins per user.
    for (UserId id = 1; id <= 10; ++id) {
      UploadMessage up = synthetic_upload(id);
      up.key_index.assign(32, static_cast<std::uint8_t>((id + 1) % 4));
      ASSERT_TRUE(server.ingest(up).is_ok());
    }
    before = answers(server, kUsers);
  }

  MatchServer recovered(ServerOptions{.num_shards = 4});
  ASSERT_TRUE(recovered.attach_store(store_config(dir)).is_ok());
  EXPECT_EQ(recovered.num_users(), kUsers);
  EXPECT_EQ(answers(recovered, kUsers), before);
}

TEST(MatchServerStore, CheckpointThenMoreIngestsRecoversBoth) {
  TempDir dir("engine_checkpoint");
  constexpr UserId kUsers = 40;
  std::vector<Bytes> before;
  {
    MatchServer server;
    ASSERT_TRUE(server.attach_store(store_config(dir)).is_ok());
    for (UserId id = 1; id <= kUsers / 2; ++id) {
      ASSERT_TRUE(server.ingest(synthetic_upload(id)).is_ok());
    }
    ASSERT_TRUE(server.checkpoint().is_ok());
    for (UserId id = kUsers / 2 + 1; id <= kUsers; ++id) {
      ASSERT_TRUE(server.ingest(synthetic_upload(id)).is_ok());
    }
    before = answers(server, kUsers);
  }

  MatchServer recovered;
  ASSERT_TRUE(recovered.attach_store(store_config(dir)).is_ok());
  EXPECT_EQ(recovered.num_users(), kUsers);
  const auto metrics = recovered.store()->metrics();
  EXPECT_GT(metrics.replayed_records, 0u);
  EXPECT_EQ(answers(recovered, kUsers), before);
}

TEST(MatchServerStore, RemoveIsDurable) {
  TempDir dir("engine_remove");
  {
    MatchServer server;
    ASSERT_TRUE(server.attach_store(store_config(dir)).is_ok());
    for (UserId id = 1; id <= 8; ++id) {
      ASSERT_TRUE(server.ingest(synthetic_upload(id)).is_ok());
    }
    ASSERT_TRUE(server.remove(3).is_ok());
    EXPECT_EQ(server.remove(3).code(), StatusCode::kUnknownUser);
  }
  MatchServer recovered;
  ASSERT_TRUE(recovered.attach_store(store_config(dir)).is_ok());
  EXPECT_EQ(recovered.num_users(), 7u);
  EXPECT_EQ(recovered.match(query_for(3), 2).code(), StatusCode::kUnknownUser);
  EXPECT_TRUE(recovered.match(query_for(4), 2).is_ok());
}

TEST(MatchServerStore, TornWalTailRecoversThePrefix) {
  TempDir dir("engine_torn");
  store::StoreConfig cfg = store_config(dir);
  cfg.wal_shards = 1;  // single log => recovered state is a strict prefix
  {
    MatchServer server;
    ASSERT_TRUE(server.attach_store(cfg).is_ok());
    for (UserId id = 1; id <= 12; ++id) {
      ASSERT_TRUE(server.ingest(synthetic_upload(id)).is_ok());
    }
  }
  // Tear the last record (kill -9 mid-write).
  const fs::path wal = dir.path / "shard-0" / "wal.log";
  Bytes raw = file_bytes(wal);
  raw.resize(raw.size() - 5);
  write_bytes(wal, raw);

  MatchServer recovered;
  ASSERT_TRUE(recovered.attach_store(cfg).is_ok());
  EXPECT_EQ(recovered.num_users(), 11u);
  EXPECT_EQ(recovered.store()->metrics().torn_tails, 1u);

  // The recovered engine equals a fresh engine fed the surviving prefix.
  MatchServer reference;
  for (UserId id = 1; id <= 11; ++id) {
    ASSERT_TRUE(reference.ingest(synthetic_upload(id)).is_ok());
  }
  EXPECT_EQ(answers(recovered, 11), answers(reference, 11));
}

TEST(MatchServerStore, FlippedWalBitRecoversThePrefix) {
  TempDir dir("engine_flip");
  store::StoreConfig cfg = store_config(dir);
  cfg.wal_shards = 1;
  {
    MatchServer server;
    ASSERT_TRUE(server.attach_store(cfg).is_ok());
    for (UserId id = 1; id <= 12; ++id) {
      ASSERT_TRUE(server.ingest(synthetic_upload(id)).is_ok());
    }
  }
  // Flip a bit inside the last record's payload.
  const fs::path wal = dir.path / "shard-0" / "wal.log";
  Bytes raw = file_bytes(wal);
  raw[raw.size() - 20] ^= 0x04;
  write_bytes(wal, raw);

  MatchServer recovered;
  ASSERT_TRUE(recovered.attach_store(cfg).is_ok());
  EXPECT_EQ(recovered.num_users(), 11u);
  EXPECT_EQ(recovered.store()->metrics().crc_stops, 1u);
}

TEST(MatchServerStore, EvictionPagesGroupsOutAndFaultsThemBackIdentically) {
  TempDir dir("eviction");
  store::StoreConfig cfg = store_config(dir);
  cfg.memory_budget_bytes = 2048;  // a few groups fit; most must page out
  constexpr UserId kUsers = 80;

  MatchServer budgeted(ServerOptions{.num_shards = 2});
  ASSERT_TRUE(budgeted.attach_store(cfg).is_ok());
  MatchServer reference(ServerOptions{.num_shards = 2});
  for (UserId id = 1; id <= kUsers; ++id) {
    ASSERT_TRUE(budgeted.ingest(synthetic_upload(id, /*num_groups=*/8)).is_ok());
    ASSERT_TRUE(reference.ingest(synthetic_upload(id, /*num_groups=*/8)).is_ok());
  }
  const auto metrics = budgeted.store()->metrics();
  EXPECT_GT(metrics.pages_written, 0u) << "budget never forced an eviction";

  // Every query faults its group back in (if evicted) and must answer
  // exactly like the all-resident reference engine.
  for (UserId id = 1; id <= kUsers; ++id) {
    auto a = budgeted.match(query_for(id), 4);
    auto b = reference.match(query_for(id), 4);
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    EXPECT_EQ(a->serialize(), b->serialize()) << "user " << id;
  }
  EXPECT_GT(budgeted.store()->metrics().pages_read, 0u);
  // Group bookkeeping survives the round trip.
  for (UserId id = 1; id <= kUsers; ++id) {
    EXPECT_EQ(budgeted.group_size_of(id), reference.group_size_of(id));
  }
}

TEST(MatchServerStore, EvictedGroupPageBytesRoundTripExactly) {
  TempDir dir("evict_bytes");
  store::StoreConfig cfg = store_config(dir);
  cfg.memory_budget_bytes = 1;  // evict everything not just touched
  // One data shard so the two groups contend for the same budget.
  MatchServer server(ServerOptions{.num_shards = 1});
  ASSERT_TRUE(server.attach_store(cfg).is_ok());
  for (UserId id = 1; id <= 20; ++id) {
    ASSERT_TRUE(server.ingest(synthetic_upload(id, /*num_groups=*/2)).is_ok());
  }
  // Page files hold serialized UploadMessage wires; parse them back and
  // compare against regenerated uploads byte for byte.
  std::size_t checked = 0;
  for (const auto& entry : fs::directory_iterator(dir.path / "pages")) {
    const Bytes raw = file_bytes(entry.path());
    store::RecordScanner scanner(
        BytesView(raw).subspan(store::kFileHeaderBytes));
    const auto rec = scanner.next();
    ASSERT_TRUE(rec.has_value());
    Reader r(rec->payload);
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const Bytes wire = r.var_bytes();
      const auto up = UploadMessage::parse(wire);
      ASSERT_TRUE(up.is_ok());
      EXPECT_EQ(wire, synthetic_upload(up->user_id, 2).serialize());
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(MatchServerStore, MatchBatchEqualsSequentialUnderPaging) {
  TempDir dir("batch_paging");
  store::StoreConfig cfg = store_config(dir);
  cfg.memory_budget_bytes = 2048;
  MatchServer server(ServerOptions{.num_shards = 2, .batch_threads = 4});
  ASSERT_TRUE(server.attach_store(cfg).is_ok());
  std::vector<QueryRequest> queries;
  for (UserId id = 1; id <= 50; ++id) {
    ASSERT_TRUE(server.ingest(synthetic_upload(id, /*num_groups=*/8)).is_ok());
    queries.push_back(query_for(id));
  }
  const auto batched = server.match_batch(queries, 4);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto sequential = server.match(queries[i], 4);
    ASSERT_TRUE(batched[i].is_ok());
    ASSERT_TRUE(sequential.is_ok());
    EXPECT_EQ(batched[i]->serialize(), sequential->serialize());
  }
}

TEST(MatchServerStore, ConcurrentIngestAndMatchUnderPagingStaysConsistent) {
  TempDir dir("concurrent");
  store::StoreConfig cfg = store_config(dir);
  cfg.memory_budget_bytes = 4096;
  MatchServer server(ServerOptions{.num_shards = 4});
  ASSERT_TRUE(server.attach_store(cfg).is_ok());
  for (UserId id = 1; id <= 32; ++id) {
    ASSERT_TRUE(server.ingest(synthetic_upload(id, /*num_groups=*/6)).is_ok());
  }

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const UserId id = static_cast<UserId>((t * kOpsPerThread + i) % 32 + 1);
        if (i % 3 == 0) {
          if (!server.ingest(synthetic_upload(id, 6)).is_ok()) failures.fetch_add(1);
        } else {
          const auto result = server.match(query_for(id), 3);
          // kEmptyGroup can race a re-upload; anything else is a bug.
          if (!result.is_ok() && result.code() != StatusCode::kEmptyGroup) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // And the busy history still replays into an identical engine.
  std::vector<Bytes> live = answers(server, 32, 3);
  MatchServer recovered(ServerOptions{.num_shards = 4});
  ASSERT_TRUE(recovered.attach_store(cfg).is_ok());
  EXPECT_EQ(answers(recovered, 32, 3), live);
}

// ------------------------------------------------------ KeyServer + store

RsaKeyPair test_rsa() {
  Drbg rng(777);
  return RsaKeyPair::generate(rng, 512);
}

Bytes oprf_request(const RsaPublicKey& /*pub*/, UserId client, std::uint64_t salt) {
  Drbg rng(salt);
  KeyRequest req;
  req.client_id = client;
  // 256 random bits: always inside the 512-bit RSA group.
  req.blinded = BigInt::from_bytes(rng.bytes(32));
  return req.serialize();
}

TEST(KeyServerStore, SpentBudgetsSurviveRestart) {
  TempDir dir("budgets");
  RsaKeyPair rsa = test_rsa();
  const RsaPublicKey pub = rsa.public_key();
  {
    KeyServer server(RsaKeyPair{rsa}, KeyServerOptions{.requests_per_epoch = 3});
    ASSERT_TRUE(server.attach_store(store_config(dir)).is_ok());
    ASSERT_TRUE(server.handle(oprf_request(pub, 9, 1)).is_ok());
    ASSERT_TRUE(server.handle(oprf_request(pub, 9, 2)).is_ok());
  }
  // A restart must not refund the two spent requests.
  KeyServer recovered(RsaKeyPair{rsa}, KeyServerOptions{.requests_per_epoch = 3});
  ASSERT_TRUE(recovered.attach_store(store_config(dir)).is_ok());
  EXPECT_TRUE(recovered.handle(oprf_request(pub, 9, 3)).is_ok());
  EXPECT_EQ(recovered.handle(oprf_request(pub, 9, 4)).code(),
            StatusCode::kBudgetExhausted);
}

TEST(KeyServerStore, EpochResetIsDurable) {
  TempDir dir("epochs");
  RsaKeyPair rsa = test_rsa();
  const RsaPublicKey pub = rsa.public_key();
  {
    KeyServer server(RsaKeyPair{rsa}, KeyServerOptions{.requests_per_epoch = 2});
    ASSERT_TRUE(server.attach_store(store_config(dir)).is_ok());
    ASSERT_TRUE(server.handle(oprf_request(pub, 5, 1)).is_ok());
    ASSERT_TRUE(server.handle(oprf_request(pub, 5, 2)).is_ok());
    EXPECT_EQ(server.handle(oprf_request(pub, 5, 3)).code(),
              StatusCode::kBudgetExhausted);
    server.next_epoch();
    ASSERT_TRUE(server.handle(oprf_request(pub, 5, 4)).is_ok());
  }
  // Replay: 2 charges, epoch marker, 1 charge => 1 used after restart.
  KeyServer recovered(RsaKeyPair{rsa}, KeyServerOptions{.requests_per_epoch = 2});
  ASSERT_TRUE(recovered.attach_store(store_config(dir)).is_ok());
  EXPECT_TRUE(recovered.handle(oprf_request(pub, 5, 5)).is_ok());
  EXPECT_EQ(recovered.handle(oprf_request(pub, 5, 6)).code(),
            StatusCode::kBudgetExhausted);
}

TEST(KeyServerStore, CheckpointCompactsTheLogAndRecoversEqually) {
  TempDir dir("key_checkpoint");
  RsaKeyPair rsa = test_rsa();
  const RsaPublicKey pub = rsa.public_key();
  {
    KeyServer server(RsaKeyPair{rsa}, KeyServerOptions{.requests_per_epoch = 4});
    ASSERT_TRUE(server.attach_store(store_config(dir)).is_ok());
    for (UserId client = 1; client <= 6; ++client) {
      ASSERT_TRUE(server.handle(oprf_request(pub, client, client * 10)).is_ok());
    }
    ASSERT_TRUE(server.checkpoint().is_ok());
    ASSERT_TRUE(server.handle(oprf_request(pub, 1, 99)).is_ok());
  }
  KeyServer recovered(RsaKeyPair{rsa}, KeyServerOptions{.requests_per_epoch = 4});
  ASSERT_TRUE(recovered.attach_store(store_config(dir)).is_ok());
  // Client 1 spent 2 of 4; two more succeed, the fifth fails.
  ASSERT_TRUE(recovered.handle(oprf_request(pub, 1, 100)).is_ok());
  ASSERT_TRUE(recovered.handle(oprf_request(pub, 1, 101)).is_ok());
  EXPECT_EQ(recovered.handle(oprf_request(pub, 1, 102)).code(),
            StatusCode::kBudgetExhausted);
}

}  // namespace
}  // namespace smatch
