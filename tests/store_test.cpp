// Durable-store tests: on-disk framing (MANIFEST v2 bytes pinned), WAL
// segment rotation and sealed-segment GC, crash windows inside rotation
// and checkpoint (via the maintenance hook seam), v1 -> v2 store
// migration, WAL replay across torn tails and flipped bits, byte-
// identical engine recovery with background maintenance racing eviction,
// cold-group eviction under a memory budget, and budget persistence in
// the key service. The concurrency tests are meant to also run under
// TSan (scripts/ci.sh builds this target with -DSMATCH_SANITIZE=thread).
// The kill -9 variant of the recovery story lives in
// tests/store_crash_harness.cpp, driven by scripts/ci.sh.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <string_view>
#include <thread>
#include <vector>

#include "common/serde.hpp"

#include "core/key_server.hpp"
#include "core/server.hpp"
#include "crypto/drbg.hpp"
#include "store/format.hpp"
#include "store/store.hpp"
#include "store/wal.hpp"

namespace smatch {
namespace {

namespace fs = std::filesystem;

/// A unique writable directory, removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("smatch_store_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

Bytes file_bytes(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_bytes(const fs::path& p, BytesView data) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

/// Deterministic synthetic upload: everything derives from the user id,
/// so any process (including the crash harness) can regenerate it.
UploadMessage synthetic_upload(UserId id, std::size_t num_groups = 4) {
  UploadMessage up;
  up.user_id = id;
  up.key_index.assign(32, static_cast<std::uint8_t>(id % num_groups));
  up.key_index[1] = static_cast<std::uint8_t>((id % num_groups) * 37 + 1);
  up.chain_cipher = BigInt::from_decimal(std::to_string(1000000007ull * id + 13));
  up.chain_cipher_bits = 64;
  Drbg rng(id + 1);
  up.auth_token = rng.bytes(16);
  return up;
}

QueryRequest query_for(UserId id) {
  QueryRequest q;
  q.query_id = id * 3 + 1;
  q.timestamp = id + 100;
  q.user_id = id;
  return q;
}

store::StoreOptions store_options(const TempDir& dir) {
  store::StoreOptions opts;
  opts.directory = dir.str();
  opts.durability.fsync = store::FsyncPolicy::kNever;  // tests don't need platter latency
  return opts;
}

/// An aggressive background policy: rotate and checkpoint near-constantly
/// so short tests see many full maintenance cycles.
store::MaintenancePolicy aggressive_policy() {
  store::MaintenancePolicy policy;
  policy.background = true;
  policy.rotate_segment_bytes = 512;
  policy.checkpoint_sealed_segments = 1;
  policy.min_interval = std::chrono::milliseconds(1);
  policy.poll_interval = std::chrono::milliseconds(1);
  return policy;
}

// ---------------------------------------------------------------- format

TEST(StoreFormat, FileHeaderRoundTripsAndRejectsDamage) {
  const Bytes header = store::encode_file_header(store::FileKind::kSnapshot, 5);
  ASSERT_EQ(header.size(), store::kFileHeaderBytes);
  std::uint32_t shard = 0;
  EXPECT_TRUE(
      store::check_file_header(header, store::FileKind::kSnapshot, &shard).is_ok());
  EXPECT_EQ(shard, 5u);
  // Wrong kind.
  EXPECT_EQ(store::check_file_header(header, store::FileKind::kWal).code(),
            StatusCode::kMalformedMessage);
  // Future version.
  Bytes versioned = header;
  versioned[2] = store::kStoreVersion + 1;
  EXPECT_EQ(store::check_file_header(versioned, store::FileKind::kSnapshot).code(),
            StatusCode::kUnsupportedVersion);
  // Truncated.
  EXPECT_EQ(store::check_file_header(BytesView(header).subspan(0, 7),
                                     store::FileKind::kSnapshot)
                .code(),
            StatusCode::kMalformedMessage);
}

TEST(StoreFormat, RecordsScanBackInOrder) {
  Bytes log;
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    Bytes payload(seq, static_cast<std::uint8_t>(seq));
    append(log, store::encode_record(store::RecordType::kUpload, seq, payload));
  }
  store::RecordScanner scanner(log);
  std::uint64_t expect = 1;
  while (auto rec = scanner.next()) {
    EXPECT_EQ(rec->seq, expect);
    EXPECT_EQ(rec->payload.size(), expect);
    ++expect;
  }
  EXPECT_EQ(expect, 6u);
  EXPECT_EQ(scanner.end(), store::ScanEnd::kClean);
  EXPECT_EQ(scanner.offset(), log.size());
}

TEST(StoreFormat, TornTailStopsScanCleanly) {
  Bytes log = store::encode_record(store::RecordType::kUpload, 1, Bytes(8, 0xAA));
  const std::size_t whole = log.size();
  append(log, store::encode_record(store::RecordType::kUpload, 2, Bytes(8, 0xBB)));
  // Chop the second record anywhere: mid-length, mid-body, mid-crc.
  for (const std::size_t cut : {whole + 2, whole + 10, log.size() - 1}) {
    store::RecordScanner scanner(BytesView(log).subspan(0, cut));
    ASSERT_TRUE(scanner.next().has_value());
    EXPECT_FALSE(scanner.next().has_value());
    EXPECT_EQ(scanner.end(), store::ScanEnd::kTornTail) << "cut=" << cut;
    EXPECT_EQ(scanner.offset(), whole);
  }
}

TEST(StoreFormat, FlippedBitStopsScanAtCrcMismatch) {
  Bytes log = store::encode_record(store::RecordType::kUpload, 1, Bytes(8, 0xAA));
  append(log, store::encode_record(store::RecordType::kDelete, 2, Bytes(4, 0xBB)));
  Bytes flipped = log;
  flipped[log.size() - 10] ^= 0x01;  // inside the second record's body
  store::RecordScanner scanner(flipped);
  ASSERT_TRUE(scanner.next().has_value());
  EXPECT_FALSE(scanner.next().has_value());
  EXPECT_EQ(scanner.end(), store::ScanEnd::kCrcMismatch);
}

TEST(StoreFormat, AbsurdLengthStopsScanAsBadRecord) {
  Bytes log = {0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x00};
  store::RecordScanner scanner(log);
  EXPECT_FALSE(scanner.next().has_value());
  EXPECT_EQ(scanner.end(), store::ScanEnd::kBadRecord);
}

TEST(StoreFormat, ManifestV2EncodingIsPinned) {
  store::Manifest m;
  m.shards.push_back({.first_live = 2, .active = 3});
  m.shards.push_back({.first_live = 1, .active = 1});
  const Bytes encoded = store::encode_manifest(m);
  // header ("SM" || v1 || 'M' || shard 0) || ver=2 || shards=2 ||
  // (2,3) || (1,1) || crc32(body). The file-header version stays
  // kStoreVersion; only the body carries the manifest version.
  EXPECT_EQ(to_hex(BytesView(encoded).subspan(0, encoded.size() - 4)),
            "534d014d00000000"
            "0000000200000002"
            "0000000200000003"
            "0000000100000001");
  const BytesView body =
      BytesView(encoded).subspan(store::kFileHeaderBytes,
                                 encoded.size() - store::kFileHeaderBytes - 4);
  Reader crc_reader(BytesView(encoded).subspan(encoded.size() - 4));
  EXPECT_EQ(crc_reader.u32(), crc32(body));

  const auto parsed = store::parse_manifest(encoded);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->version, store::kManifestVersion);
  ASSERT_EQ(parsed->shards.size(), 2u);
  EXPECT_EQ(parsed->shards[0].first_live, 2u);
  EXPECT_EQ(parsed->shards[0].active, 3u);
  EXPECT_EQ(parsed->shards[1].first_live, 1u);
  EXPECT_EQ(parsed->shards[1].active, 1u);
}

TEST(StoreFormat, ManifestV1BodyParsesForMigration) {
  // v1 body: wal_shards || crc32(wal_shards). Exactly 8 bytes, which is
  // how parse_manifest tells it from any v2 body (>= 20 bytes).
  Writer w;
  w.raw(store::encode_file_header(store::FileKind::kManifest, 0));
  Writer body;
  body.u32(3);
  w.raw(body.bytes());
  w.u32(crc32(body.bytes()));
  const Bytes raw = w.take();
  const auto parsed = store::parse_manifest(raw);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->version, 1u);
  ASSERT_EQ(parsed->shards.size(), 3u);
  for (const auto& shard : parsed->shards) {
    EXPECT_EQ(shard.first_live, 1u);
    EXPECT_EQ(shard.active, 1u);
  }
}

TEST(StoreFormat, ManifestRejectsInvertedSegmentRange) {
  store::Manifest m;
  m.shards.push_back({.first_live = 5, .active = 4});
  EXPECT_EQ(store::parse_manifest(store::encode_manifest(m)).code(),
            StatusCode::kMalformedMessage);
}

// ------------------------------------------------------------------- wal

TEST(WalFile, AppendReplayRoundTrip) {
  TempDir dir("wal_roundtrip");
  store::WalFile wal;
  ASSERT_TRUE(wal.open((dir.path / "wal.log").string(), 3,
                       store::FsyncPolicy::kNever, 0)
                  .is_ok());
  for (int i = 1; i <= 10; ++i) {
    const auto seq = wal.append(store::RecordType::kUpload,
                                Bytes(static_cast<std::size_t>(i), 0x42));
    ASSERT_TRUE(seq.is_ok());
    EXPECT_EQ(*seq, static_cast<std::uint64_t>(i));
  }
  std::vector<std::uint64_t> seen;
  const auto stats = wal.replay(0, [&](const store::StoreRecord& rec) {
    seen.push_back(rec.seq);
    return Status::ok();
  });
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats->records, 10u);
  EXPECT_EQ(stats->torn_tail + stats->crc_stopped, 0u);
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(wal.next_seq(), 11u);
}

TEST(WalFile, SequenceNumbersSurviveResetAndReopen) {
  TempDir dir("wal_seq");
  const std::string path = (dir.path / "wal.log").string();
  {
    store::WalFile wal;
    ASSERT_TRUE(wal.open(path, 0, store::FsyncPolicy::kAlways, 0).is_ok());
    ASSERT_TRUE(wal.append(store::RecordType::kUpload, Bytes{1}).is_ok());
    ASSERT_TRUE(wal.append(store::RecordType::kUpload, Bytes{2}).is_ok());
    ASSERT_TRUE(wal.reset().is_ok());
    // Never reused: the next append continues the history.
    const auto seq = wal.append(store::RecordType::kUpload, Bytes{3});
    ASSERT_TRUE(seq.is_ok());
    EXPECT_EQ(*seq, 3u);
  }
  store::WalFile reopened;
  ASSERT_TRUE(reopened.open(path, 0, store::FsyncPolicy::kNever, 0).is_ok());
  const auto stats = reopened.replay(0, [](const store::StoreRecord&) {
    return Status::ok();
  });
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats->records, 1u);
  EXPECT_EQ(reopened.next_seq(), 4u);
}

TEST(WalFile, RejectsForeignShardHeader) {
  TempDir dir("wal_shard");
  const std::string path = (dir.path / "wal.log").string();
  {
    store::WalFile wal;
    ASSERT_TRUE(wal.open(path, 1, store::FsyncPolicy::kNever, 0).is_ok());
  }
  store::WalFile other;
  EXPECT_EQ(other.open(path, 2, store::FsyncPolicy::kNever, 0).code(),
            StatusCode::kMalformedMessage);
}

TEST(WalFile, TruncatedTailReplaysPrefixThenExtends) {
  TempDir dir("wal_torn");
  const std::string path = (dir.path / "wal.log").string();
  {
    store::WalFile wal;
    ASSERT_TRUE(wal.open(path, 0, store::FsyncPolicy::kNever, 0).is_ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(wal.append(store::RecordType::kUpload, Bytes(16, 0x11)).is_ok());
    }
  }
  // kill -9 mid-append: the tail record is half there.
  Bytes raw = file_bytes(path);
  raw.resize(raw.size() - 7);
  write_bytes(path, raw);

  store::WalFile wal;
  ASSERT_TRUE(wal.open(path, 0, store::FsyncPolicy::kNever, 0).is_ok());
  const auto stats = wal.replay(0, [](const store::StoreRecord&) {
    return Status::ok();
  });
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats->records, 2u);
  EXPECT_EQ(stats->torn_tail, 1u);
  // The counter fast-forwarded past the survivors; appends keep working.
  const auto seq = wal.append(store::RecordType::kUpload, Bytes{9});
  ASSERT_TRUE(seq.is_ok());
  EXPECT_EQ(*seq, 3u);

  // Replay truncated the torn bytes off before re-enabling appends, so
  // the new record is *reachable*: without the truncation, O_APPEND
  // would land it behind the damage and a second recovery would lose it.
  store::WalFile again;
  ASSERT_TRUE(again.open(path, 0, store::FsyncPolicy::kNever, 0).is_ok());
  const auto stats2 = again.replay(0, [](const store::StoreRecord&) {
    return Status::ok();
  });
  ASSERT_TRUE(stats2.is_ok());
  EXPECT_EQ(stats2->records, 3u);
  EXPECT_EQ(stats2->torn_tail, 0u);
}

// ----------------------------------------------------------- ProfileStore

TEST(ProfileStore, ManifestPinsShardCountAcrossReopen) {
  TempDir dir("manifest");
  store::StoreOptions cfg = store_options(dir);
  cfg.wal_shards = 3;
  {
    auto st = store::ProfileStore::open(cfg, 8);
    ASSERT_TRUE(st.is_ok());
    EXPECT_EQ((*st)->shards(), 3u);
  }
  // A different config cannot re-shard an existing store.
  cfg.wal_shards = 7;
  auto st = store::ProfileStore::open(cfg, 8);
  ASSERT_TRUE(st.is_ok());
  EXPECT_EQ((*st)->shards(), 3u);
}

TEST(ProfileStore, ReplayDedupsWalRecordsAfterCrashBetweenSnapshotAndGc) {
  TempDir dir("dedup");
  store::StoreOptions cfg = store_options(dir);
  cfg.wal_shards = 1;

  {
    auto opened = store::ProfileStore::open(cfg, 1);
    ASSERT_TRUE(opened.is_ok());
    auto& store = **opened;
    for (std::uint8_t i = 1; i <= 4; ++i) {
      ASSERT_TRUE(
          store.append(0, store::RecordType::kUpload, Bytes(4, i)).is_ok());
    }
    // Crash between snapshot publish and sealed-segment GC: abort the
    // commit right after the snapshot renames. Disk now holds both the
    // snapshot and the sealed segment describing the same four records.
    store.set_maintenance_hook([](std::string_view point) {
      return point != "checkpoint.after_snapshots";
    });
    auto cp = store.begin_checkpoint();
    ASSERT_TRUE(cp.is_ok());
    for (std::uint8_t i = 1; i <= 4; ++i) {
      (*cp)->add(0, store::RecordType::kUpload, Bytes(4, i));
    }
    EXPECT_EQ((*cp)->commit().code(), StatusCode::kConnectionReset);
    EXPECT_TRUE(fs::exists(dir.path / "shard-0" / "wal-0-1"));
  }

  auto reopened = store::ProfileStore::open(cfg, 1);
  ASSERT_TRUE(reopened.is_ok());
  std::size_t applied = 0;
  ASSERT_TRUE((*reopened)
                  ->replay(0,
                           [&](const store::StoreRecord&) {
                             ++applied;
                             return Status::ok();
                           })
                  .is_ok());
  // 4 from the snapshot; the 4 sealed-segment records are seq-deduped,
  // not applied twice (which would matter for deletes).
  EXPECT_EQ(applied, 4u);
  EXPECT_EQ((*reopened)->metrics().replay_skipped, 4u);
}

TEST(ProfileStore, SegmentsRotateSealAndReplayAcrossReopen) {
  TempDir dir("segments");
  store::StoreOptions cfg = store_options(dir);
  cfg.wal_shards = 1;
  {
    auto opened = store::ProfileStore::open(cfg, 1);
    ASSERT_TRUE(opened.is_ok());
    auto& store = **opened;
    std::uint8_t value = 0;
    for (int seg = 0; seg < 2; ++seg) {
      for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(
            store.append(0, store::RecordType::kUpload, Bytes(4, ++value)).is_ok());
      }
      ASSERT_TRUE(store.rotate(0).is_ok());
    }
    // Rotating an empty active segment is a no-op, not an empty file.
    ASSERT_TRUE(store.rotate(0).is_ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          store.append(0, store::RecordType::kUpload, Bytes(4, ++value)).is_ok());
    }
    const auto metrics = store.metrics();
    EXPECT_EQ(metrics.rotations, 2u);
    EXPECT_EQ(metrics.sealed_segments, 2u);
    EXPECT_TRUE(fs::exists(dir.path / "shard-0" / "wal-0-1"));
    EXPECT_TRUE(fs::exists(dir.path / "shard-0" / "wal-0-2"));
    EXPECT_TRUE(fs::exists(dir.path / "shard-0" / "wal-0-3"));
  }
  auto reopened = store::ProfileStore::open(cfg, 1);
  ASSERT_TRUE(reopened.is_ok());
  std::vector<std::uint64_t> seqs;
  ASSERT_TRUE((*reopened)
                  ->replay(0,
                           [&](const store::StoreRecord& rec) {
                             seqs.push_back(rec.seq);
                             return Status::ok();
                           })
                  .is_ok());
  ASSERT_EQ(seqs.size(), 9u);
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i + 1);
  EXPECT_EQ((*reopened)->metrics().sealed_segments, 2u);
  // New appends continue the global sequence in the reopened active tip.
  ASSERT_TRUE(
      (*reopened)->append(0, store::RecordType::kUpload, Bytes(4, 0x77)).is_ok());
}

TEST(ProfileStore, V1StoreLayoutMigratesInPlace) {
  TempDir dir("migrate");
  // Craft a v1 store by hand: v1 MANIFEST (shard count only) plus one
  // unnumbered wal.log holding two records.
  {
    Writer w;
    w.raw(store::encode_file_header(store::FileKind::kManifest, 0));
    Writer body;
    body.u32(1);
    w.raw(body.bytes());
    w.u32(crc32(body.bytes()));
    write_bytes(dir.path / "MANIFEST", w.bytes());
    fs::create_directories(dir.path / "shard-0");
    store::WalFile wal;
    ASSERT_TRUE(wal.open((dir.path / "shard-0" / "wal.log").string(), 0,
                         store::FsyncPolicy::kNever, 0)
                    .is_ok());
    ASSERT_TRUE(wal.append(store::RecordType::kUpload, Bytes(4, 1)).is_ok());
    ASSERT_TRUE(wal.append(store::RecordType::kUpload, Bytes(4, 2)).is_ok());
  }
  auto opened = store::ProfileStore::open(store_options(dir), 4);
  ASSERT_TRUE(opened.is_ok());
  EXPECT_EQ((*opened)->shards(), 1u);  // the manifest wins over defaults
  // The log was renamed into segment 1 of the chain...
  EXPECT_FALSE(fs::exists(dir.path / "shard-0" / "wal.log"));
  EXPECT_TRUE(fs::exists(dir.path / "shard-0" / "wal-0-1"));
  // ...its history is intact...
  std::size_t applied = 0;
  ASSERT_TRUE((*opened)
                  ->replay(0,
                           [&](const store::StoreRecord&) {
                             ++applied;
                             return Status::ok();
                           })
                  .is_ok());
  EXPECT_EQ(applied, 2u);
  // ...and the MANIFEST is rewritten with a v2 body.
  const auto manifest = store::parse_manifest(file_bytes(dir.path / "MANIFEST"));
  ASSERT_TRUE(manifest.is_ok());
  EXPECT_EQ(manifest->version, store::kManifestVersion);
}

TEST(ProfileStore, RotationCrashWindowLeavesAnOrphanCleanedAtOpen) {
  TempDir dir("rotate_crash");
  store::StoreOptions cfg = store_options(dir);
  cfg.wal_shards = 1;
  {
    auto opened = store::ProfileStore::open(cfg, 1);
    ASSERT_TRUE(opened.is_ok());
    auto& store = **opened;
    for (std::uint8_t i = 1; i <= 2; ++i) {
      ASSERT_TRUE(
          store.append(0, store::RecordType::kUpload, Bytes(4, i)).is_ok());
    }
    // Crash after the fresh segment file exists but before the MANIFEST
    // names it: the file is an orphan above the manifest's active range.
    store.set_maintenance_hook(
        [](std::string_view point) { return point != "rotate.sealed"; });
    EXPECT_EQ(store.rotate(0).code(), StatusCode::kConnectionReset);
    EXPECT_TRUE(fs::exists(dir.path / "shard-0" / "wal-0-2"));
    // The in-memory swap never happened: appends still land in segment 1.
    ASSERT_TRUE(
        store.append(0, store::RecordType::kUpload, Bytes(4, 3)).is_ok());
  }
  auto reopened = store::ProfileStore::open(cfg, 1);
  ASSERT_TRUE(reopened.is_ok());
  EXPECT_FALSE(fs::exists(dir.path / "shard-0" / "wal-0-2"));
  std::size_t applied = 0;
  ASSERT_TRUE((*reopened)
                  ->replay(0,
                           [&](const store::StoreRecord&) {
                             ++applied;
                             return Status::ok();
                           })
                  .is_ok());
  EXPECT_EQ(applied, 3u);
}

TEST(ProfileStore, GcSparesSegmentsSealedBeyondTheSnapshotBoundary) {
  TempDir dir("gc_guard");
  store::StoreOptions cfg = store_options(dir);
  cfg.wal_shards = 1;
  auto opened = store::ProfileStore::open(cfg, 1);
  ASSERT_TRUE(opened.is_ok());
  auto& store = **opened;
  for (std::uint8_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(store.append(0, store::RecordType::kUpload, Bytes(4, i)).is_ok());
  }
  // The checkpoint's boundary is the sealed frontier at begin: seq 3.
  auto cp = store.begin_checkpoint();
  ASSERT_TRUE(cp.is_ok());
  // A rotation races the running checkpoint: seqs 4-5 seal into segment
  // 2, beyond the boundary.
  for (std::uint8_t i = 4; i <= 5; ++i) {
    ASSERT_TRUE(store.append(0, store::RecordType::kUpload, Bytes(4, i)).is_ok());
  }
  ASSERT_TRUE(store.rotate(0).is_ok());
  for (std::uint8_t i = 1; i <= 3; ++i) {
    (*cp)->add(0, store::RecordType::kUpload, Bytes(4, i));
  }
  ASSERT_TRUE((*cp)->commit().is_ok());
  // Segment 1 (covered) is gone; segment 2 must survive GC or seqs 4-5
  // would be acknowledged writes silently lost.
  EXPECT_FALSE(fs::exists(dir.path / "shard-0" / "wal-0-1"));
  EXPECT_TRUE(fs::exists(dir.path / "shard-0" / "wal-0-2"));
  const auto metrics = store.metrics();
  EXPECT_EQ(metrics.segments_gced, 1u);
  EXPECT_GT(metrics.gc_bytes_reclaimed, 0u);
  std::size_t applied = 0;
  ASSERT_TRUE(store
                  .replay(0,
                          [&](const store::StoreRecord&) {
                            ++applied;
                            return Status::ok();
                          })
                  .is_ok());
  EXPECT_EQ(applied, 5u);  // 3 snapshot records + seqs 4-5 from segment 2
}

TEST(ProfileStore, MissingLiveSegmentFailsLoudlyAtOpen) {
  TempDir dir("missing_segment");
  store::StoreOptions cfg = store_options(dir);
  cfg.wal_shards = 1;
  {
    auto opened = store::ProfileStore::open(cfg, 1);
    ASSERT_TRUE(opened.is_ok());
    auto& store = **opened;
    for (std::uint8_t seg = 1; seg <= 2; ++seg) {
      ASSERT_TRUE(
          store.append(0, store::RecordType::kUpload, Bytes(4, seg)).is_ok());
      ASSERT_TRUE(store.rotate(0).is_ok());
    }
  }
  // Segment 2 sits inside the manifest's live range: losing it is
  // acknowledged data loss, which recovery must not paper over.
  fs::remove(dir.path / "shard-0" / "wal-0-2");
  auto reopened = store::ProfileStore::open(cfg, 1);
  EXPECT_EQ(reopened.code(), StatusCode::kMalformedMessage);
}

TEST(ProfileStore, DamagedSealedSegmentFailsLoudlyAtOpen) {
  TempDir dir("sealed_rot");
  store::StoreOptions cfg = store_options(dir);
  cfg.wal_shards = 1;
  {
    auto opened = store::ProfileStore::open(cfg, 1);
    ASSERT_TRUE(opened.is_ok());
    ASSERT_TRUE(
        (*opened)->append(0, store::RecordType::kUpload, Bytes(16, 0x3C)).is_ok());
    ASSERT_TRUE((*opened)->rotate(0).is_ok());
  }
  // A sealed segment is immutable: a flipped bit is disk rot, and unlike
  // active-tail damage it is not survivable truncation.
  const fs::path sealed = dir.path / "shard-0" / "wal-0-1";
  Bytes raw = file_bytes(sealed);
  raw[raw.size() - 8] ^= 0x20;
  write_bytes(sealed, raw);
  auto reopened = store::ProfileStore::open(cfg, 1);
  EXPECT_EQ(reopened.code(), StatusCode::kMalformedMessage);
}

TEST(ProfileStore, RequestCheckpointRunsACycleThroughTheScheduler) {
  TempDir dir("request_cp");
  store::StoreOptions cfg = store_options(dir);
  cfg.wal_shards = 1;
  auto opened = store::ProfileStore::open(cfg, 1);
  ASSERT_TRUE(opened.is_ok());
  auto& store = **opened;
  for (std::uint8_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(store.append(0, store::RecordType::kUpload, Bytes(4, i)).is_ok());
  }
  // No source registered: the cycle must fail loudly, not crash.
  EXPECT_FALSE(store.request_checkpoint().get().is_ok());
  store.set_checkpoint_source([](store::ProfileStore::Checkpoint& cp) {
    cp.add(0, store::RecordType::kUpload, Bytes(4, 0x2A));
    return Status::ok();
  });
  ASSERT_TRUE(store.request_checkpoint().get().is_ok());
  const auto metrics = store.metrics();
  EXPECT_EQ(metrics.snapshots, 1u);
  EXPECT_GE(metrics.maintenance_cycles, 1u);
  EXPECT_EQ(metrics.sealed_segments, 0u);  // the cycle compacted them
  const auto stats = store.maintenance().stats();
  EXPECT_GE(stats.cycles, 1u);
  EXPECT_EQ(stats.failed_cycles, 1u);
  EXPECT_GT(stats.last_checkpoint_unix_ms, 0u);
}

TEST(ProfileStore, PausedSchedulerDefersRequestsUntilResume) {
  TempDir dir("paused");
  store::StoreOptions cfg = store_options(dir);
  cfg.wal_shards = 1;
  auto opened = store::ProfileStore::open(cfg, 1);
  ASSERT_TRUE(opened.is_ok());
  auto& store = **opened;
  store.set_checkpoint_source(
      [](store::ProfileStore::Checkpoint&) { return Status::ok(); });
  ASSERT_TRUE(store.append(0, store::RecordType::kUpload, Bytes(4, 1)).is_ok());
  store.maintenance().pause();
  EXPECT_TRUE(store.maintenance().paused());
  auto fut = store.request_checkpoint();
  // While paused, no cycle may run — the future cannot resolve.
  EXPECT_EQ(fut.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);
  store.maintenance().resume();
  EXPECT_TRUE(fut.get().is_ok());
}

TEST(ProfileStore, TornTailRecoveriesAreCountedPerShard) {
  TempDir dir("torn_per_shard");
  store::StoreOptions cfg = store_options(dir);
  cfg.wal_shards = 2;
  {
    auto opened = store::ProfileStore::open(cfg, 2);
    ASSERT_TRUE(opened.is_ok());
    for (std::size_t shard = 0; shard < 2; ++shard) {
      for (std::uint8_t i = 1; i <= 2; ++i) {
        ASSERT_TRUE(
            (*opened)->append(shard, store::RecordType::kUpload, Bytes(8, i)).is_ok());
      }
    }
  }
  // Tear only shard 1's active tail.
  const fs::path wal = dir.path / "shard-1" / "wal-1-1";
  Bytes raw = file_bytes(wal);
  raw.resize(raw.size() - 3);
  write_bytes(wal, raw);

  auto reopened = store::ProfileStore::open(cfg, 2);
  ASSERT_TRUE(reopened.is_ok());
  for (std::size_t shard = 0; shard < 2; ++shard) {
    ASSERT_TRUE((*reopened)
                    ->replay(shard,
                             [](const store::StoreRecord&) { return Status::ok(); })
                    .is_ok());
  }
  const auto metrics = (*reopened)->metrics();
  ASSERT_EQ(metrics.torn_tail_records.size(), 2u);
  EXPECT_EQ(metrics.torn_tail_records[0], 0u);
  EXPECT_EQ(metrics.torn_tail_records[1], 1u);
  EXPECT_EQ(metrics.torn_tails, 1u);
}

TEST(ProfileStore, DeprecatedStoreConfigShimMapsOntoStoreOptions) {
  TempDir dir("shim");
  store::StoreConfig cfg;
  cfg.directory = dir.str();
  cfg.fsync = store::FsyncPolicy::kNever;
  cfg.fsync_batch_bytes = 128;
  cfg.wal_shards = 2;
  cfg.memory_budget_bytes = 1234;
  ASSERT_TRUE(cfg.enabled());
  auto opened = store::ProfileStore::open(cfg, 8);
  ASSERT_TRUE(opened.is_ok());
  EXPECT_EQ((*opened)->shards(), 2u);
  const store::StoreOptions& opts = (*opened)->options();
  EXPECT_EQ(opts.durability.fsync, store::FsyncPolicy::kNever);
  EXPECT_EQ(opts.durability.fsync_batch_bytes, 128u);
  EXPECT_EQ(opts.residency.memory_budget_bytes, 1234u);
}

TEST(ProfileStore, PageRoundTripAndDamageDetection) {
  TempDir dir("pages");
  auto opened = store::ProfileStore::open(store_options(dir), 1);
  ASSERT_TRUE(opened.is_ok());
  auto& store = **opened;
  const Bytes key(32, 0x7E);
  const Bytes payload(100, 0x5C);
  ASSERT_TRUE(store.write_page(key, payload).is_ok());
  auto back = store.read_page(key);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, payload);

  // Flip one payload bit on disk: the page must be rejected, not served.
  const fs::path page = dir.path / "pages" / (to_hex(key) + ".pg");
  Bytes raw = file_bytes(page);
  raw[raw.size() - 10] ^= 0x80;
  write_bytes(page, raw);
  EXPECT_EQ(store.read_page(key).code(), StatusCode::kMalformedMessage);

  store.drop_page(key);
  EXPECT_FALSE(store.read_page(key).is_ok());
}

TEST(ProfileStore, StalePagesAreDiscardedAtOpen) {
  TempDir dir("stale_pages");
  const Bytes key(32, 0x11);
  {
    auto st = store::ProfileStore::open(store_options(dir), 1);
    ASSERT_TRUE(st.is_ok());
    ASSERT_TRUE((*st)->write_page(key, Bytes(8, 1)).is_ok());
  }
  auto st = store::ProfileStore::open(store_options(dir), 1);
  ASSERT_TRUE(st.is_ok());
  // Pages are cache, not truth: a reopen starts clean.
  EXPECT_FALSE((*st)->read_page(key).is_ok());
}

// ----------------------------------------------------- MatchServer + store

/// kNN answers of `server` for every user in [1, n], serialized.
std::vector<Bytes> answers(MatchServer& server, UserId n, std::size_t k = 4) {
  std::vector<Bytes> out;
  for (UserId id = 1; id <= n; ++id) {
    auto result = server.match(query_for(id), k);
    if (result.is_ok()) {
      out.push_back(result->serialize());
    } else {
      out.push_back(to_bytes("error:" + std::to_string(static_cast<int>(result.code()))));
    }
  }
  return out;
}

TEST(MatchServerStore, RestartAnswersKnnByteIdentically) {
  TempDir dir("engine_restart");
  constexpr UserId kUsers = 60;
  std::vector<Bytes> before;
  {
    MatchServer server(ServerOptions{.num_shards = 4});
    ASSERT_TRUE(server.attach_store(store_options(dir)).is_ok());
    for (UserId id = 1; id <= kUsers; ++id) {
      ASSERT_TRUE(server.ingest(synthetic_upload(id)).is_ok());
    }
    // Re-uploads move a few users between groups — replay must preserve
    // last-writer-wins per user.
    for (UserId id = 1; id <= 10; ++id) {
      UploadMessage up = synthetic_upload(id);
      up.key_index.assign(32, static_cast<std::uint8_t>((id + 1) % 4));
      ASSERT_TRUE(server.ingest(up).is_ok());
    }
    before = answers(server, kUsers);
  }

  MatchServer recovered(ServerOptions{.num_shards = 4});
  ASSERT_TRUE(recovered.attach_store(store_options(dir)).is_ok());
  EXPECT_EQ(recovered.num_users(), kUsers);
  EXPECT_EQ(answers(recovered, kUsers), before);
}

TEST(MatchServerStore, CheckpointThenMoreIngestsRecoversBoth) {
  TempDir dir("engine_checkpoint");
  constexpr UserId kUsers = 40;
  std::vector<Bytes> before;
  {
    MatchServer server;
    ASSERT_TRUE(server.attach_store(store_options(dir)).is_ok());
    for (UserId id = 1; id <= kUsers / 2; ++id) {
      ASSERT_TRUE(server.ingest(synthetic_upload(id)).is_ok());
    }
    ASSERT_TRUE(server.checkpoint().is_ok());
    for (UserId id = kUsers / 2 + 1; id <= kUsers; ++id) {
      ASSERT_TRUE(server.ingest(synthetic_upload(id)).is_ok());
    }
    before = answers(server, kUsers);
  }

  MatchServer recovered;
  ASSERT_TRUE(recovered.attach_store(store_options(dir)).is_ok());
  EXPECT_EQ(recovered.num_users(), kUsers);
  const auto metrics = recovered.store()->metrics();
  EXPECT_GT(metrics.replayed_records, 0u);
  EXPECT_EQ(answers(recovered, kUsers), before);
}

TEST(MatchServerStore, RemoveIsDurable) {
  TempDir dir("engine_remove");
  {
    MatchServer server;
    ASSERT_TRUE(server.attach_store(store_options(dir)).is_ok());
    for (UserId id = 1; id <= 8; ++id) {
      ASSERT_TRUE(server.ingest(synthetic_upload(id)).is_ok());
    }
    ASSERT_TRUE(server.remove(3).is_ok());
    EXPECT_EQ(server.remove(3).code(), StatusCode::kUnknownUser);
  }
  MatchServer recovered;
  ASSERT_TRUE(recovered.attach_store(store_options(dir)).is_ok());
  EXPECT_EQ(recovered.num_users(), 7u);
  EXPECT_EQ(recovered.match(query_for(3), 2).code(), StatusCode::kUnknownUser);
  EXPECT_TRUE(recovered.match(query_for(4), 2).is_ok());
}

TEST(MatchServerStore, TornWalTailRecoversThePrefix) {
  TempDir dir("engine_torn");
  store::StoreOptions cfg = store_options(dir);
  cfg.wal_shards = 1;  // single log => recovered state is a strict prefix
  {
    MatchServer server;
    ASSERT_TRUE(server.attach_store(cfg).is_ok());
    for (UserId id = 1; id <= 12; ++id) {
      ASSERT_TRUE(server.ingest(synthetic_upload(id)).is_ok());
    }
  }
  // Tear the last record (kill -9 mid-write) in the active segment.
  const fs::path wal = dir.path / "shard-0" / "wal-0-1";
  Bytes raw = file_bytes(wal);
  raw.resize(raw.size() - 5);
  write_bytes(wal, raw);

  MatchServer recovered;
  ASSERT_TRUE(recovered.attach_store(cfg).is_ok());
  EXPECT_EQ(recovered.num_users(), 11u);
  EXPECT_EQ(recovered.store()->metrics().torn_tails, 1u);

  // The recovered engine equals a fresh engine fed the surviving prefix.
  MatchServer reference;
  for (UserId id = 1; id <= 11; ++id) {
    ASSERT_TRUE(reference.ingest(synthetic_upload(id)).is_ok());
  }
  EXPECT_EQ(answers(recovered, 11), answers(reference, 11));
}

TEST(MatchServerStore, FlippedWalBitRecoversThePrefix) {
  TempDir dir("engine_flip");
  store::StoreOptions cfg = store_options(dir);
  cfg.wal_shards = 1;
  {
    MatchServer server;
    ASSERT_TRUE(server.attach_store(cfg).is_ok());
    for (UserId id = 1; id <= 12; ++id) {
      ASSERT_TRUE(server.ingest(synthetic_upload(id)).is_ok());
    }
  }
  // Flip a bit inside the last record's payload of the active segment.
  const fs::path wal = dir.path / "shard-0" / "wal-0-1";
  Bytes raw = file_bytes(wal);
  raw[raw.size() - 20] ^= 0x04;
  write_bytes(wal, raw);

  MatchServer recovered;
  ASSERT_TRUE(recovered.attach_store(cfg).is_ok());
  EXPECT_EQ(recovered.num_users(), 11u);
  EXPECT_EQ(recovered.store()->metrics().crc_stops, 1u);
}

TEST(MatchServerStore, EvictionPagesGroupsOutAndFaultsThemBackIdentically) {
  TempDir dir("eviction");
  store::StoreOptions cfg = store_options(dir);
  cfg.residency.memory_budget_bytes = 2048;  // a few groups fit; most must page out
  constexpr UserId kUsers = 80;

  MatchServer budgeted(ServerOptions{.num_shards = 2});
  ASSERT_TRUE(budgeted.attach_store(cfg).is_ok());
  MatchServer reference(ServerOptions{.num_shards = 2});
  for (UserId id = 1; id <= kUsers; ++id) {
    ASSERT_TRUE(budgeted.ingest(synthetic_upload(id, /*num_groups=*/8)).is_ok());
    ASSERT_TRUE(reference.ingest(synthetic_upload(id, /*num_groups=*/8)).is_ok());
  }
  const auto metrics = budgeted.store()->metrics();
  EXPECT_GT(metrics.pages_written, 0u) << "budget never forced an eviction";

  // Every query faults its group back in (if evicted) and must answer
  // exactly like the all-resident reference engine.
  for (UserId id = 1; id <= kUsers; ++id) {
    auto a = budgeted.match(query_for(id), 4);
    auto b = reference.match(query_for(id), 4);
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    EXPECT_EQ(a->serialize(), b->serialize()) << "user " << id;
  }
  EXPECT_GT(budgeted.store()->metrics().pages_read, 0u);
  // Group bookkeeping survives the round trip.
  for (UserId id = 1; id <= kUsers; ++id) {
    EXPECT_EQ(budgeted.group_size_of(id), reference.group_size_of(id));
  }
}

TEST(MatchServerStore, EvictedGroupPageBytesRoundTripExactly) {
  TempDir dir("evict_bytes");
  store::StoreOptions cfg = store_options(dir);
  cfg.residency.memory_budget_bytes = 1;  // evict everything not just touched
  // One data shard so the two groups contend for the same budget.
  MatchServer server(ServerOptions{.num_shards = 1});
  ASSERT_TRUE(server.attach_store(cfg).is_ok());
  for (UserId id = 1; id <= 20; ++id) {
    ASSERT_TRUE(server.ingest(synthetic_upload(id, /*num_groups=*/2)).is_ok());
  }
  // Page files hold serialized UploadMessage wires; parse them back and
  // compare against regenerated uploads byte for byte.
  std::size_t checked = 0;
  for (const auto& entry : fs::directory_iterator(dir.path / "pages")) {
    const Bytes raw = file_bytes(entry.path());
    store::RecordScanner scanner(
        BytesView(raw).subspan(store::kFileHeaderBytes));
    const auto rec = scanner.next();
    ASSERT_TRUE(rec.has_value());
    Reader r(rec->payload);
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const Bytes wire = r.var_bytes();
      const auto up = UploadMessage::parse(wire);
      ASSERT_TRUE(up.is_ok());
      EXPECT_EQ(wire, synthetic_upload(up->user_id, 2).serialize());
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(MatchServerStore, MatchBatchEqualsSequentialUnderPaging) {
  TempDir dir("batch_paging");
  store::StoreOptions cfg = store_options(dir);
  cfg.residency.memory_budget_bytes = 2048;
  MatchServer server(ServerOptions{.num_shards = 2, .batch_threads = 4});
  ASSERT_TRUE(server.attach_store(cfg).is_ok());
  std::vector<QueryRequest> queries;
  for (UserId id = 1; id <= 50; ++id) {
    ASSERT_TRUE(server.ingest(synthetic_upload(id, /*num_groups=*/8)).is_ok());
    queries.push_back(query_for(id));
  }
  const auto batched = server.match_batch(queries, 4);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto sequential = server.match(queries[i], 4);
    ASSERT_TRUE(batched[i].is_ok());
    ASSERT_TRUE(sequential.is_ok());
    EXPECT_EQ(batched[i]->serialize(), sequential->serialize());
  }
}

TEST(MatchServerStore, ConcurrentIngestAndMatchUnderPagingStaysConsistent) {
  TempDir dir("concurrent");
  store::StoreOptions cfg = store_options(dir);
  cfg.residency.memory_budget_bytes = 4096;
  MatchServer server(ServerOptions{.num_shards = 4});
  ASSERT_TRUE(server.attach_store(cfg).is_ok());
  for (UserId id = 1; id <= 32; ++id) {
    ASSERT_TRUE(server.ingest(synthetic_upload(id, /*num_groups=*/6)).is_ok());
  }

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const UserId id = static_cast<UserId>((t * kOpsPerThread + i) % 32 + 1);
        if (i % 3 == 0) {
          if (!server.ingest(synthetic_upload(id, 6)).is_ok()) failures.fetch_add(1);
        } else {
          const auto result = server.match(query_for(id), 3);
          // kEmptyGroup can race a re-upload; anything else is a bug.
          if (!result.is_ok() && result.code() != StatusCode::kEmptyGroup) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // And the busy history still replays into an identical engine.
  std::vector<Bytes> live = answers(server, 32, 3);
  MatchServer recovered(ServerOptions{.num_shards = 4});
  ASSERT_TRUE(recovered.attach_store(cfg).is_ok());
  EXPECT_EQ(answers(recovered, 32, 3), live);
}

TEST(MatchServerStore, BackgroundMaintenanceRacesEvictionAndIngestConsistently) {
  TempDir dir("maint_race");
  store::StoreOptions cfg = store_options(dir);
  cfg.residency.memory_budget_bytes = 4096;  // eviction stays active
  cfg.maintenance.policy = aggressive_policy();
  MatchServer server(ServerOptions{.num_shards = 4});
  ASSERT_TRUE(server.attach_store(cfg).is_ok());
  for (UserId id = 1; id <= 32; ++id) {
    ASSERT_TRUE(server.ingest(synthetic_upload(id, 6)).is_ok());
  }

  // Mixed ingest/match traffic while the scheduler rotates, snapshots
  // (staggered, one directory shard at a time), and GCs underneath it —
  // checkpoints race evictions and re-uploads on the same shards.
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 150;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const UserId id = static_cast<UserId>((t * kOpsPerThread + i) % 32 + 1);
        if (i % 3 == 0) {
          if (!server.ingest(synthetic_upload(id, 6)).is_ok()) failures.fetch_add(1);
        } else {
          const auto result = server.match(query_for(id), 3);
          if (!result.is_ok() && result.code() != StatusCode::kEmptyGroup) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // The traffic left sealed segments behind, so the background scheduler
  // is guaranteed to fire a cycle on its own — wait for it rather than
  // racing the 1 ms poll interval.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.store()->metrics().maintenance_cycles == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.store()->metrics().maintenance_cycles, 1u);
  // And one explicit cycle on top of whatever the background ran.
  ASSERT_TRUE(server.checkpoint().is_ok());
  EXPECT_GE(server.store()->metrics().maintenance_cycles, 2u);
  EXPECT_GT(server.store()->metrics().segments_gced, 0u);

  // The compacted history still recovers byte-identically.
  std::vector<Bytes> live = answers(server, 32, 3);
  MatchServer recovered(ServerOptions{.num_shards = 4});
  ASSERT_TRUE(recovered.attach_store(cfg).is_ok());
  EXPECT_EQ(answers(recovered, 32, 3), live);
}

TEST(MatchServerStore, QuiesceAllCheckpointRecoversIdentically) {
  TempDir dir("quiesce_cp");
  store::StoreOptions cfg = store_options(dir);
  cfg.maintenance.policy.staggered = false;  // cover the quiesce-all source
  constexpr UserId kUsers = 30;
  std::vector<Bytes> before;
  {
    MatchServer server(ServerOptions{.num_shards = 4});
    ASSERT_TRUE(server.attach_store(cfg).is_ok());
    for (UserId id = 1; id <= kUsers; ++id) {
      ASSERT_TRUE(server.ingest(synthetic_upload(id)).is_ok());
    }
    ASSERT_TRUE(server.checkpoint().is_ok());
    EXPECT_GT(server.store()->metrics().snapshots, 0u);
    before = answers(server, kUsers);
  }
  MatchServer recovered(ServerOptions{.num_shards = 4});
  ASSERT_TRUE(recovered.attach_store(cfg).is_ok());
  EXPECT_EQ(recovered.num_users(), kUsers);
  EXPECT_EQ(answers(recovered, kUsers), before);
}

// ------------------------------------------------------ KeyServer + store

RsaKeyPair test_rsa() {
  Drbg rng(777);
  return RsaKeyPair::generate(rng, 512);
}

Bytes oprf_request(const RsaPublicKey& /*pub*/, UserId client, std::uint64_t salt) {
  Drbg rng(salt);
  KeyRequest req;
  req.client_id = client;
  // 256 random bits: always inside the 512-bit RSA group.
  req.blinded = BigInt::from_bytes(rng.bytes(32));
  return req.serialize();
}

TEST(KeyServerStore, SpentBudgetsSurviveRestart) {
  TempDir dir("budgets");
  RsaKeyPair rsa = test_rsa();
  const RsaPublicKey pub = rsa.public_key();
  {
    KeyServer server(RsaKeyPair{rsa}, KeyServerOptions{.requests_per_epoch = 3});
    ASSERT_TRUE(server.attach_store(store_options(dir)).is_ok());
    ASSERT_TRUE(server.handle(oprf_request(pub, 9, 1)).is_ok());
    ASSERT_TRUE(server.handle(oprf_request(pub, 9, 2)).is_ok());
  }
  // A restart must not refund the two spent requests.
  KeyServer recovered(RsaKeyPair{rsa}, KeyServerOptions{.requests_per_epoch = 3});
  ASSERT_TRUE(recovered.attach_store(store_options(dir)).is_ok());
  EXPECT_TRUE(recovered.handle(oprf_request(pub, 9, 3)).is_ok());
  EXPECT_EQ(recovered.handle(oprf_request(pub, 9, 4)).code(),
            StatusCode::kBudgetExhausted);
}

TEST(KeyServerStore, EpochResetIsDurable) {
  TempDir dir("epochs");
  RsaKeyPair rsa = test_rsa();
  const RsaPublicKey pub = rsa.public_key();
  {
    KeyServer server(RsaKeyPair{rsa}, KeyServerOptions{.requests_per_epoch = 2});
    ASSERT_TRUE(server.attach_store(store_options(dir)).is_ok());
    ASSERT_TRUE(server.handle(oprf_request(pub, 5, 1)).is_ok());
    ASSERT_TRUE(server.handle(oprf_request(pub, 5, 2)).is_ok());
    EXPECT_EQ(server.handle(oprf_request(pub, 5, 3)).code(),
              StatusCode::kBudgetExhausted);
    server.next_epoch();
    ASSERT_TRUE(server.handle(oprf_request(pub, 5, 4)).is_ok());
  }
  // Replay: 2 charges, epoch marker, 1 charge => 1 used after restart.
  KeyServer recovered(RsaKeyPair{rsa}, KeyServerOptions{.requests_per_epoch = 2});
  ASSERT_TRUE(recovered.attach_store(store_options(dir)).is_ok());
  EXPECT_TRUE(recovered.handle(oprf_request(pub, 5, 5)).is_ok());
  EXPECT_EQ(recovered.handle(oprf_request(pub, 5, 6)).code(),
            StatusCode::kBudgetExhausted);
}

TEST(KeyServerStore, CheckpointCompactsTheLogAndRecoversEqually) {
  TempDir dir("key_checkpoint");
  RsaKeyPair rsa = test_rsa();
  const RsaPublicKey pub = rsa.public_key();
  {
    KeyServer server(RsaKeyPair{rsa}, KeyServerOptions{.requests_per_epoch = 4});
    ASSERT_TRUE(server.attach_store(store_options(dir)).is_ok());
    for (UserId client = 1; client <= 6; ++client) {
      ASSERT_TRUE(server.handle(oprf_request(pub, client, client * 10)).is_ok());
    }
    ASSERT_TRUE(server.checkpoint().is_ok());
    ASSERT_TRUE(server.handle(oprf_request(pub, 1, 99)).is_ok());
  }
  KeyServer recovered(RsaKeyPair{rsa}, KeyServerOptions{.requests_per_epoch = 4});
  ASSERT_TRUE(recovered.attach_store(store_options(dir)).is_ok());
  // Client 1 spent 2 of 4; two more succeed, the fifth fails.
  ASSERT_TRUE(recovered.handle(oprf_request(pub, 1, 100)).is_ok());
  ASSERT_TRUE(recovered.handle(oprf_request(pub, 1, 101)).is_ok());
  EXPECT_EQ(recovered.handle(oprf_request(pub, 1, 102)).code(),
            StatusCode::kBudgetExhausted);
}

}  // namespace
}  // namespace smatch
