// Loopback TCP integration: real sockets under the same Transport API
// the in-process pair implements. The headline tests run the full
// S-MATCH flow (Keygen over OPRF -> upload -> kNN query -> Vf) over
// localhost TCP and assert byte-for-byte parity with an identical
// in-process run, then re-run the flow under seeded fault injection and
// check the retry machinery converges with its metrics visible in the
// global registry.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <set>
#include <string_view>
#include <vector>

#include "core/service.hpp"
#include "core/smatch.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"
#include "net/fault.hpp"
#include "net/inproc_transport.hpp"
#include "net/server.hpp"
#include "net/tcp_transport.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace smatch {
namespace {

constexpr std::chrono::milliseconds kIo{2000};

Bytes pattern_bytes(std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(i * 131 + 3);
  return out;
}

// --- Socket-level behaviour -----------------------------------------------

TEST(TcpLoopback, ConnectSendRecvBothDirections) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok()) << listener.status().to_string();
  ASSERT_NE(listener->port(), 0);

  auto client = TcpTransport::connect("localhost", listener->port(), kIo);
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();
  auto server = listener->accept(kIo);
  ASSERT_TRUE(server.is_ok()) << server.status().to_string();

  ASSERT_TRUE((*client)->send(MessageKind::kUpload, pattern_bytes(200), kIo).is_ok());
  const auto at_server = (*server)->recv(kIo);
  ASSERT_TRUE(at_server.is_ok());
  EXPECT_EQ(at_server->kind, MessageKind::kUpload);
  EXPECT_EQ(at_server->payload, pattern_bytes(200));

  ASSERT_TRUE((*server)->send(MessageKind::kResult, pattern_bytes(31), kIo).is_ok());
  const auto at_client = (*client)->recv(kIo);
  ASSERT_TRUE(at_client.is_ok());
  EXPECT_EQ(at_client->payload, pattern_bytes(31));

  EXPECT_EQ((*client)->stats().sent_of(MessageKind::kUpload), 200u);
  EXPECT_EQ((*server)->stats().received_of(MessageKind::kUpload), 200u);
}

TEST(TcpLoopback, LargeFrameSurvivesChunkedSocketIo) {
  // 1 MiB payload: far beyond one ::recv chunk and any socket buffer, so
  // this exercises partial writes and stream reassembly.
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  auto client = TcpTransport::connect("127.0.0.1", listener->port(), kIo);
  ASSERT_TRUE(client.is_ok());
  auto server = listener->accept(kIo);
  ASSERT_TRUE(server.is_ok());

  const Bytes big = pattern_bytes(1u << 20);
  std::thread sender(
      [&] { EXPECT_TRUE((*client)->send(MessageKind::kOther, big, kIo).is_ok()); });
  const auto got = (*server)->recv(kIo);
  sender.join();
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(got->payload, big);
}

TEST(TcpLoopback, TypedFailures) {
  // Nobody listening: refused, not hung.
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  const std::uint16_t dead_port = listener->port();
  listener->close();
  const auto refused = TcpTransport::connect("127.0.0.1", dead_port, kIo);
  EXPECT_EQ(refused.code(), StatusCode::kConnectionReset);

  auto live = TcpListener::bind(0);
  ASSERT_TRUE(live.is_ok());
  // Nobody connecting: accept times out.
  EXPECT_EQ(live->accept(std::chrono::milliseconds{20}).code(), StatusCode::kTimeout);

  auto client = TcpTransport::connect("127.0.0.1", live->port(), kIo);
  ASSERT_TRUE(client.is_ok());
  auto server = live->accept(kIo);
  ASSERT_TRUE(server.is_ok());
  // Silent peer: recv times out.
  EXPECT_EQ((*client)->recv(std::chrono::milliseconds{20}).code(), StatusCode::kTimeout);
  // Peer hangup: reset, not timeout.
  ASSERT_TRUE((*server)->close().is_ok());
  EXPECT_EQ((*client)->recv(kIo).code(), StatusCode::kConnectionReset);
}

// --- Full S-MATCH flow ----------------------------------------------------

struct FlowResult {
  std::array<std::uint64_t, kNumMessageKinds> sent{};
  std::array<std::uint64_t, kNumMessageKinds> received{};
  std::size_t verified = 0;
  std::size_t enrolled = 0;
  std::uint64_t retries = 0;
};

/// Runs the complete protocol for a small deployment over one client
/// connection. Every run starts from the same DRBG seed, so two runs
/// differ only in the transport underneath — which must not change a
/// single protocol byte.
FlowResult run_flow(bool over_tcp, const FaultSpec* faults) {
  Drbg rng(2026);

  DatasetSpec spec;
  spec.name = "loopback";
  spec.num_users = 6;
  spec.attributes = {AttributeSpec::landmark("country", 1.0, 0.7),
                     AttributeSpec::uniform("city", 5.0),
                     AttributeSpec::uniform("interest", 5.0)};
  SchemeParams params;
  params.rs_threshold = 8;
  auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());
  const ClientConfig config = make_client_config(spec, params, group);

  KeyServer key_server(RsaKeyPair::generate(rng, 1024), /*requests_per_epoch=*/0);
  MatchServer match_server;
  SmatchService service(match_server, key_server, /*top_k=*/5);
  NetServer net(service.dispatcher());

  std::unique_ptr<Transport> conn;
  if (over_tcp) {
    ServerConfig server_config;
    server_config.tcp_port = 0;  // ephemeral
    server_config.io_threads = 1;
    server_config.dispatch_workers = 2;
    EXPECT_TRUE(net.start(server_config).is_ok());
    auto connected = TcpTransport::connect("127.0.0.1", net.port(), kIo);
    EXPECT_TRUE(connected.is_ok()) << connected.status().to_string();
    conn = std::move(*connected);
  } else {
    auto [client_end, server_end] = InProcTransport::make_pair();
    net.attach(std::move(server_end));
    conn = std::move(client_end);
  }

  FaultInjector injector(faults != nullptr ? *faults : FaultSpec{});
  if (faults != nullptr) conn->set_fault_injector(&injector);
  RetryPolicy policy;
  if (faults != nullptr) {
    policy.max_attempts = 8;
    policy.attempt_timeout = std::chrono::milliseconds{150};
    policy.initial_backoff = std::chrono::milliseconds{2};
    policy.max_backoff = std::chrono::milliseconds{20};
  }

  const Dataset population = Dataset::generate_clustered(spec, rng, 2, 0);
  std::vector<Client> phones;
  phones.reserve(population.num_users());
  std::vector<std::unique_ptr<RemoteClient>> remotes;
  FlowResult out{};
  for (std::size_t u = 0; u < population.num_users(); ++u) {
    phones.push_back(
        Client::create(static_cast<UserId>(u + 1), population.profile(u), config).value());
    // All phones share the one connection: distinct session seeds keep
    // their request-id spaces (and the replay cache) from colliding.
    remotes.push_back(std::make_unique<RemoteClient>(
        phones.back(), *conn, key_server.public_key(), policy, /*seed=*/u + 1));
    EXPECT_TRUE(remotes.back()->enroll(rng).is_ok()) << "user " << u;
    EXPECT_TRUE(remotes.back()->upload(rng).is_ok()) << "user " << u;
    ++out.enrolled;
    out.retries += remotes.back()->session_stats().retries;
  }

  const auto report = remotes.front()->query(1, /*timestamp=*/1700000000);
  EXPECT_TRUE(report.is_ok()) << report.status().to_string();
  if (report.is_ok()) out.verified = report->verified.size();
  out.retries += remotes.front()->session_stats().retries;

  const TransportStats stats = conn->stats();
  for (std::size_t k = 0; k < kNumMessageKinds; ++k) {
    out.sent[k] = stats.sent_of(static_cast<MessageKind>(k));
    out.received[k] = stats.received_of(static_cast<MessageKind>(k));
  }
  (void)conn->close();
  net.stop();
  return out;
}

TEST(TcpLoopback, FullFlowMatchesInProcessByteForByte) {
  const FlowResult tcp = run_flow(/*over_tcp=*/true, nullptr);
  const FlowResult inproc = run_flow(/*over_tcp=*/false, nullptr);

  EXPECT_EQ(tcp.enrolled, 6u);
  EXPECT_EQ(tcp.verified, inproc.verified);
  // Responses travel under the request's kind (the session layer echoes
  // it), so the query result comes back as kQuery bytes.
  EXPECT_GT(tcp.sent[static_cast<std::size_t>(MessageKind::kUpload)], 0u);
  EXPECT_GT(tcp.received[static_cast<std::size_t>(MessageKind::kQuery)], 0u);
  for (std::size_t k = 0; k < kNumMessageKinds; ++k) {
    EXPECT_EQ(tcp.sent[k], inproc.sent[k])
        << "sent bytes diverge for kind " << to_string(static_cast<MessageKind>(k));
    EXPECT_EQ(tcp.received[k], inproc.received[k])
        << "received bytes diverge for kind "
        << to_string(static_cast<MessageKind>(k));
  }
}

#if SMATCH_OBS_ENABLED
TEST(TcpLoopback, TraceIdsStitchAcrossTheWire) {
  // Cross-wire trace propagation: the client's net.call span and the
  // server's net.handle span (produced on a different thread, from the
  // parsed envelope) must carry the same nonzero trace id.
  obs::TraceBuffer::instance().begin();
  (void)run_flow(/*over_tcp=*/true, nullptr);
  const std::vector<obs::TraceEvent> events = obs::TraceBuffer::instance().events();
  obs::TraceBuffer::instance().end();

  std::set<std::uint64_t> call_traces;
  std::set<std::uint64_t> handle_traces;
  for (const obs::TraceEvent& ev : events) {
    if (ev.trace_id == 0) continue;
    if (std::string_view(ev.name) == "net.call") call_traces.insert(ev.trace_id);
    if (std::string_view(ev.name) == "net.handle") handle_traces.insert(ev.trace_id);
  }
  ASSERT_FALSE(call_traces.empty());
  ASSERT_FALSE(handle_traces.empty());
  // Every server-side handle span belongs to a trace some client call
  // started; the flow makes dozens of calls, so demand full overlap.
  std::size_t stitched = 0;
  for (const std::uint64_t id : handle_traces) {
    stitched += call_traces.count(id);
  }
  EXPECT_EQ(stitched, handle_traces.size());
  EXPECT_GE(stitched, 6u);  // at least one round-trip per enrolled user
}
#endif  // SMATCH_OBS_ENABLED

TEST(TcpLoopback, FullFlowConvergesUnderFaultInjection) {
  const std::uint64_t retries_before =
      obs::Registry::global().counter("smatch_net_retries_total")->load();

  FaultSpec faults;
  faults.drop = 0.4;
  faults.seed = 17;
  const FlowResult faulty = run_flow(/*over_tcp=*/true, &faults);

  // Every protocol round still completed...
  EXPECT_EQ(faulty.enrolled, 6u);
  // ...because the session layer retried through the losses.
  EXPECT_GT(faulty.retries, 0u);

  // Acceptance: the retry metrics are visible in the registry snapshot.
  EXPECT_GT(obs::Registry::global().counter("smatch_net_retries_total")->load(),
            retries_before);
  const std::string snapshot = obs::Registry::global().json();
  EXPECT_NE(snapshot.find("smatch_net_retries_total"), std::string::npos);
  EXPECT_NE(snapshot.find("smatch_net_fault_dropped_total"), std::string::npos);

  // Determinism: the same fault seed and DRBG seed reproduce the same
  // protocol outcome (byte counts may differ — retransmits — but the
  // flow-level results must not).
  const FlowResult again = run_flow(/*over_tcp=*/true, &faults);
  EXPECT_EQ(again.enrolled, faulty.enrolled);
  EXPECT_EQ(again.verified, faulty.verified);
}

}  // namespace
}  // namespace smatch
