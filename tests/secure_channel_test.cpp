// Encrypt-then-MAC secure-channel tests (paper Section VIII), plus the
// MatchServer replay-protection policy for timestamped queries.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/server.hpp"
#include "crypto/drbg.hpp"
#include "net/secure_channel.hpp"

namespace smatch {
namespace {

SessionKeys test_keys() {
  Drbg rng(61);
  return make_session_keys(rng.bytes(48));
}

TEST(SecureChannel, SealOpenRoundTrip) {
  Drbg rng(1);
  const SessionKeys keys = test_keys();
  SecureSender sender(keys.client_to_server);
  SecureReceiver receiver(keys.client_to_server);
  for (std::size_t len : {0u, 1u, 100u, 5000u}) {
    const Bytes msg = rng.bytes(len);
    const StatusOr<Bytes> opened = receiver.open(sender.seal(msg, rng));
    ASSERT_TRUE(opened.is_ok()) << "len=" << len;
    EXPECT_EQ(*opened, msg) << "len=" << len;
  }
  EXPECT_EQ(sender.records_sent(), 4u);
}

TEST(SecureChannel, DirectionsUseIndependentKeys) {
  const SessionKeys keys = test_keys();
  EXPECT_NE(keys.client_to_server, keys.server_to_client);
  Drbg rng(2);
  SecureSender c2s(keys.client_to_server);
  SecureReceiver wrong_dir(keys.server_to_client);
  EXPECT_EQ(wrong_dir.open(c2s.seal(to_bytes("hello"), rng)).code(),
            StatusCode::kMalformedMessage);
}

TEST(SecureChannel, TamperedRecordFailsMac) {
  Drbg rng(3);
  const SessionKeys keys = test_keys();
  SecureSender sender(keys.client_to_server);
  const Bytes record = sender.seal(to_bytes("profile upload"), rng);
  for (std::size_t pos : {std::size_t{0}, record.size() / 2, record.size() - 1}) {
    SecureReceiver receiver(keys.client_to_server);
    Bytes bad = record;
    bad[pos] ^= 0x01;
    EXPECT_EQ(receiver.open(bad).code(), StatusCode::kMalformedMessage)
        << "pos=" << pos;
  }
}

TEST(SecureChannel, ReplayAndReorderDetected) {
  Drbg rng(4);
  const SessionKeys keys = test_keys();
  SecureSender sender(keys.client_to_server);
  SecureReceiver receiver(keys.client_to_server);
  const Bytes r0 = sender.seal(to_bytes("first"), rng);
  const Bytes r1 = sender.seal(to_bytes("second"), rng);
  EXPECT_EQ(receiver.open(r0).value(), to_bytes("first"));
  // Replay of r0: rejected as a typed status, not an exception.
  EXPECT_EQ(receiver.open(r0).code(), StatusCode::kStaleTimestamp);
  // r1 still opens in order.
  EXPECT_EQ(receiver.open(r1).value(), to_bytes("second"));

  // Out-of-order delivery: a fresh receiver seeing r1 first rejects it.
  SecureReceiver reordered(keys.client_to_server);
  SecureSender sender2(keys.client_to_server);
  (void)sender2.seal(to_bytes("x"), rng);
  const Bytes second = sender2.seal(to_bytes("y"), rng);
  EXPECT_EQ(reordered.open(second).code(), StatusCode::kStaleTimestamp);
}

TEST(SecureChannel, TruncatedAndBadKeysRejected) {
  Drbg rng(5);
  // Key sizing is construction-time misconfiguration: still an exception.
  EXPECT_THROW(SecureSender(Bytes(63, 0)), CryptoError);
  EXPECT_THROW(SecureReceiver(Bytes(0, 0)), CryptoError);
  // Wire input damage is a status.
  SecureReceiver receiver(test_keys().client_to_server);
  EXPECT_EQ(receiver.open(Bytes(10, 0)).code(), StatusCode::kMalformedMessage);
}

TEST(ReplayProtection, ServerRejectsStaleQueryTimestamps) {
  MatchServer server;
  server.set_replay_protection(true);
  UploadMessage up;
  up.user_id = 1;
  up.key_index = Bytes(32, 1);
  up.chain_cipher = BigInt{5};
  up.chain_cipher_bits = 32;
  ASSERT_TRUE(server.ingest(up).is_ok());
  up.user_id = 2;
  up.chain_cipher = BigInt{9};
  ASSERT_TRUE(server.ingest(up).is_ok());

  EXPECT_TRUE(server.match({1, 1000, 1}, 5).is_ok());
  // Replay (same timestamp) and stale (older) queries rejected.
  EXPECT_EQ(server.match({2, 1000, 1}, 5).code(), StatusCode::kStaleTimestamp);
  EXPECT_EQ(server.match({3, 999, 1}, 5).code(), StatusCode::kStaleTimestamp);
  // Fresh timestamp accepted; other users independent.
  EXPECT_TRUE(server.match({4, 1001, 1}, 5).is_ok());
  EXPECT_TRUE(server.match({5, 1000, 2}, 5).is_ok());
  // match_within enforces the same policy.
  EXPECT_EQ(server.match_within({6, 900, 1}, 2).code(), StatusCode::kStaleTimestamp);
  EXPECT_EQ(server.metrics().replay_rejections, 3u);
}

}  // namespace
}  // namespace smatch
