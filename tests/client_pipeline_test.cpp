// Differential tests for the cached, batched client encryption pipeline:
// the node cache and the batch fan-out are pure engineering — every
// observable byte must equal what the sequential, uncached pipeline
// produces. Covers cached-vs-uncached OPE over 1000+ plaintexts,
// batched-vs-sequential fleet enrollment over 1000 randomized profiles,
// pool-vs-inline upload batches, the pipeline metrics, and a concurrent
// stress meant to run under TSan (scripts/ci.sh builds this target with
// -DSMATCH_SANITIZE=thread).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/client.hpp"
#include "core/key_server.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"
#include "group/modp_group.hpp"

namespace smatch {
namespace {

constexpr std::uint64_t kFleetSeed = 61803;

DatasetSpec small_spec(std::size_t num_users, std::size_t num_attributes) {
  DatasetSpec spec;
  spec.name = "pipeline";
  spec.num_users = num_users;
  for (std::size_t i = 0; i < num_attributes; ++i) {
    spec.attributes.push_back(AttributeSpec::uniform("a" + std::to_string(i), 6.0));
  }
  return spec;
}

ClientConfig small_config(std::size_t num_users, std::size_t num_attributes,
                          std::size_t attribute_bits) {
  SchemeParams params;
  params.attribute_bits = attribute_bits;
  params.rs_threshold = 8;
  auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());
  return make_client_config(small_spec(num_users, num_attributes), params, group);
}

TEST(ClientPipeline, CachedAndUncachedOpeAgreeOnAThousandPlaintexts) {
  Drbg rng(1009);
  const Bytes key = rng.bytes(32);
  const Ope cached(key, 64, 128);
  const Ope uncached(key, 64, 128, /*cache_nodes=*/0);
  const BigInt bound = BigInt{1} << 64;

  std::vector<BigInt> plain, cipher;
  for (int i = 0; i < 1000; ++i) {
    plain.push_back(BigInt::random_below(rng, bound));
    cipher.push_back(cached.encrypt(plain.back()));
    ASSERT_EQ(cipher.back(), uncached.encrypt(plain.back())) << "plaintext " << i;
  }
  // Decrypt differential on a stride of the ciphertexts.
  for (std::size_t i = 0; i < cipher.size(); i += 37) {
    ASSERT_EQ(cached.decrypt(cipher[i]), plain[i]);
    ASSERT_EQ(uncached.decrypt(cipher[i]), plain[i]);
  }
  // A thousand walks from one root must share prefixes.
  const OpeCacheStats stats = cached.cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

TEST(ClientPipeline, BatchedEnrollmentMatchesSequentialOnAThousandProfiles) {
  // Two fleets with identical profiles, identical RSA keys, and
  // identically seeded generators: one enrolls through the threaded batch
  // pipeline, the other with no pool and a single-threaded key server.
  // Every upload wire must be byte-identical.
  constexpr std::size_t kFleet = 1000;
  const ClientConfig config = small_config(kFleet, 3, /*attribute_bits=*/16);

  Drbg key_rng(4242);
  const RsaKeyPair rsa = RsaKeyPair::generate(key_rng, 512);
  const KeyServerOptions unlimited{.requests_per_epoch = 0};
  KeyServer seq_server(RsaKeyPair{rsa},
                       KeyServerOptions{.requests_per_epoch = 0, .batch_threads = 1});
  KeyServer batch_server(RsaKeyPair{rsa}, unlimited);

  auto make_fleet = [&](std::uint64_t seed) {
    Drbg rng(seed);
    std::vector<Client> fleet;
    fleet.reserve(kFleet);
    for (std::size_t u = 0; u < kFleet; ++u) {
      Profile p;
      for (int a = 0; a < 3; ++a) p.push_back(static_cast<AttrValue>(rng.below(64)));
      fleet.push_back(Client::create(static_cast<UserId>(u + 1), p, config).value());
    }
    return fleet;
  };
  std::vector<Client> seq_fleet = make_fleet(kFleetSeed);
  std::vector<Client> batch_fleet = make_fleet(kFleetSeed);

  std::vector<Client*> seq_ptrs, batch_ptrs;
  for (auto& c : seq_fleet) seq_ptrs.push_back(&c);
  for (auto& c : batch_fleet) batch_ptrs.push_back(&c);

  Drbg seq_rng(2026), batch_rng(2026);
  const auto sequential = enroll_and_upload_batch(seq_ptrs, seq_server, seq_rng,
                                                  /*pool=*/nullptr);
  ThreadPool pool;
  const auto batched = enroll_and_upload_batch(batch_ptrs, batch_server, batch_rng, &pool);

  ASSERT_EQ(sequential.size(), kFleet);
  ASSERT_EQ(batched.size(), kFleet);
  for (std::size_t i = 0; i < kFleet; ++i) {
    ASSERT_TRUE(sequential[i].is_ok()) << sequential[i].status().to_string();
    ASSERT_TRUE(batched[i].is_ok()) << batched[i].status().to_string();
    ASSERT_EQ(sequential[i]->serialize(), batched[i]->serialize()) << "upload " << i;
    ASSERT_EQ(seq_fleet[i].profile_key().key, batch_fleet[i].profile_key().key);
  }
}

TEST(ClientPipeline, UploadBatchIsPoolInvariantAndCountsCacheHits) {
  // One user re-uploading under one installed key: the pool must be
  // invisible in the wires, and the key's OPE node cache must be doing
  // real work (every walk shares at least the root with the previous one).
  constexpr std::size_t kUploads = 64;
  const ClientConfig config = small_config(2, 4, /*attribute_bits=*/32);
  Drbg oprf_rng(7);
  const RsaOprfServer oprf(RsaKeyPair::generate(oprf_rng, 512));

  const Profile profile = {11, 22, 33, 44};
  Client inline_client = Client::create(1, profile, config).value();
  Client pooled_client = Client::create(1, profile, config).value();
  Drbg rng_a(99), rng_b(99);
  inline_client.generate_key(oprf, rng_a);
  pooled_client.generate_key(oprf, rng_b);
  ASSERT_EQ(inline_client.profile_key().key, pooled_client.profile_key().key);

  Drbg up_a(1234), up_b(1234);
  const auto inline_ups = inline_client.make_upload_batch(kUploads, up_a);
  ThreadPool pool;
  const auto pooled_ups = pooled_client.make_upload_batch(kUploads, up_b, &pool);
  ASSERT_TRUE(inline_ups.is_ok());
  ASSERT_TRUE(pooled_ups.is_ok());
  ASSERT_EQ(inline_ups->size(), kUploads);
  for (std::size_t i = 0; i < kUploads; ++i) {
    ASSERT_EQ((*inline_ups)[i].serialize(), (*pooled_ups)[i].serialize());
  }

  const ClientMetrics m = pooled_client.metrics();
  EXPECT_EQ(m.uploads, kUploads);
  EXPECT_EQ(m.encryptions, kUploads);
  EXPECT_EQ(m.batches, 1u);
  EXPECT_EQ(m.batched_uploads, kUploads);
  ASSERT_EQ(m.batch_size_histogram.count(kUploads), 1u);
  EXPECT_GT(m.ope_cache_hits, 0u);
  EXPECT_GT(m.ope_cache_misses, 0u);
  // Machine-readable line for the CI cache gate (scripts/ci.sh fails the
  // build when this counter reads zero).
  std::printf("ope-cache-hits=%llu\n",
              static_cast<unsigned long long>(m.ope_cache_hits));
}

TEST(ClientPipeline, EncryptBatchMatchesSequentialEncryptChain) {
  const ClientConfig config = small_config(2, 4, /*attribute_bits=*/32);
  Drbg rng(55);
  const RsaOprfServer oprf(RsaKeyPair::generate(rng, 512));
  Client client = Client::create(1, Profile{1, 2, 3, 4}, config).value();
  client.generate_key(oprf, rng);

  std::vector<std::vector<BigInt>> mapped_batch;
  for (int i = 0; i < 32; ++i) mapped_batch.push_back(client.init_data(rng));

  ThreadPool pool;
  const auto batched = client.encrypt_batch(mapped_batch, &pool);
  ASSERT_TRUE(batched.is_ok());
  ASSERT_EQ(batched->size(), mapped_batch.size());
  for (std::size_t i = 0; i < mapped_batch.size(); ++i) {
    EXPECT_EQ((*batched)[i], client.encrypt_chain(mapped_batch[i]));
  }

  // Malformed inputs come back as Status, not exceptions: wrong arity...
  std::vector<std::vector<BigInt>> bad_arity = {{BigInt{1}, BigInt{2}}};
  EXPECT_EQ(client.encrypt_batch(bad_arity).code(), StatusCode::kMalformedMessage);
  // ...and a mapped value that overflows its chain slot.
  std::vector<std::vector<BigInt>> bad_width = {
      {BigInt{1} << 40, BigInt{2}, BigInt{3}, BigInt{4}}};
  EXPECT_EQ(client.encrypt_batch(bad_width).code(), StatusCode::kMalformedMessage);
}

TEST(ClientPipeline, ConcurrentBatchesOnOneClientStayConsistent) {
  // TSan target: several threads drive batch entry points and the metrics
  // snapshot against one shared (const) client. The cache is internally
  // synchronized; totals must balance afterwards.
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 8;
  const ClientConfig config = small_config(2, 4, /*attribute_bits=*/32);
  Drbg rng(88);
  const RsaOprfServer oprf(RsaKeyPair::generate(rng, 512));
  Client client = Client::create(1, Profile{5, 6, 7, 8}, config).value();
  client.generate_key(oprf, rng);

  std::vector<std::thread> threads;
  std::array<bool, kThreads> ok{};
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Drbg local(9000 + t);
      const auto ups = client.make_upload_batch(kPerThread, local);
      const auto snapshot = client.metrics();  // racing reads must be safe
      ok[t] = ups.is_ok() && ups->size() == kPerThread &&
              snapshot.encryptions <= kThreads * kPerThread;
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 0; t < kThreads; ++t) EXPECT_TRUE(ok[t]) << "thread " << t;

  const ClientMetrics m = client.metrics();
  EXPECT_EQ(m.uploads, kThreads * kPerThread);
  EXPECT_EQ(m.encryptions, kThreads * kPerThread);
  EXPECT_EQ(m.batches, kThreads);
  EXPECT_EQ(m.batched_uploads, kThreads * kPerThread);
}

TEST(ClientPipeline, BatchEntryPointsRequireAKey) {
  const ClientConfig config = small_config(2, 4, /*attribute_bits=*/32);
  const Client client = Client::create(1, Profile{1, 2, 3, 4}, config).value();
  Drbg rng(3);
  EXPECT_EQ(client.make_upload_batch(2, rng).code(), StatusCode::kMalformedMessage);
  EXPECT_EQ(client.encrypt_batch({{BigInt{0}}}).code(), StatusCode::kMalformedMessage);
}

}  // namespace
}  // namespace smatch
