// Tests for the Table I comparator baselines: DH-PSI attribute-level
// matching (LCY11/FindU-style) and the ZLL13-style two-party SE scheme —
// including the specific limitations the paper attributes to each.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/pairwise_match.hpp"
#include "baseline/psi_match.hpp"
#include "common/error.hpp"
#include "crypto/drbg.hpp"

namespace smatch {
namespace {

const ModpGroup& psi_group() {
  static const ModpGroup g = ModpGroup::test_512();
  return g;
}

TEST(PsiMatch, ComputesExactIntersectionCardinality) {
  Drbg rng(1);
  const AttributeSet a = {"jazz", "hiking", "go", "espresso"};
  const AttributeSet b = {"rock", "hiking", "espresso", "chess", "go"};
  EXPECT_EQ(psi_intersection(a, b, psi_group(), rng), 3u);
}

TEST(PsiMatch, DisjointAndIdenticalSets) {
  Drbg rng(2);
  const AttributeSet a = {"x", "y"};
  const AttributeSet b = {"p", "q", "r"};
  EXPECT_EQ(psi_intersection(a, b, psi_group(), rng), 0u);
  EXPECT_EQ(psi_intersection(a, a, psi_group(), rng), 2u);
}

TEST(PsiMatch, BlindedElementsHideAttributes) {
  Drbg rng(3);
  const AttributeSet a = {"secret-interest"};
  PsiParty party(a, psi_group(), rng);
  const auto blinded = party.round1(rng);
  ASSERT_EQ(blinded.size(), 1u);
  // The wire element is not the bare attribute hash (blinding applied).
  PsiParty party2(a, psi_group(), rng);
  const auto blinded2 = party2.round1(rng);
  EXPECT_NE(blinded[0], blinded2[0]);  // fresh secrets, different view
}

TEST(PsiMatch, RejectsMalformedInput) {
  Drbg rng(4);
  EXPECT_THROW(PsiParty(AttributeSet{}, psi_group(), rng), Error);
  PsiParty party({"a"}, psi_group(), rng);
  EXPECT_THROW((void)party.respond({BigInt{0}}), Error);
  EXPECT_THROW((void)party.respond({psi_group().p()}), Error);
}

TEST(PsiMatch, AttributeLevelOnlyMissesCloseValues) {
  // The paper's Section II criticism: PSI-style schemes "are not able to
  // differentiate users with different attribute values". Profiles one
  // unit apart on every attribute intersect in NOTHING, even though
  // S-MATCH's fine-grained matching would rank them adjacent.
  Drbg rng(5);
  const std::vector<std::uint32_t> u = {10, 20, 30};
  const std::vector<std::uint32_t> v = {11, 21, 31};  // Chebyshev distance 1
  EXPECT_EQ(psi_intersection(profile_to_set(u), profile_to_set(v), psi_group(), rng), 0u);
  // Equal values do intersect.
  const std::vector<std::uint32_t> w = {10, 20, 31};
  EXPECT_EQ(psi_intersection(profile_to_set(u), profile_to_set(w), psi_group(), rng), 2u);
}

std::shared_ptr<const ModpGroup> pw_group() {
  static const auto g = std::make_shared<const ModpGroup>(ModpGroup::test_512());
  return g;
}

TEST(PairwiseMatch, SessionAgreesSymmetrically) {
  Drbg rng(6);
  PairwiseUser alice(1, {10, 20, 30}, pw_group(), 16, rng);
  PairwiseUser bob(2, {11, 19, 30}, pw_group(), 16, rng);

  const PairwiseMessage from_bob = bob.make_message(alice.dh_public());
  const PairwiseMessage from_alice = alice.make_message(bob.dh_public());

  const BigInt threshold = BigInt{1} << 36;  // generous chain-gap bound
  const auto a_view = alice.evaluate(bob.dh_public(), from_bob, threshold);
  const auto b_view = bob.evaluate(alice.dh_public(), from_alice, threshold);
  EXPECT_TRUE(a_view.verified);
  EXPECT_TRUE(b_view.verified);
  EXPECT_EQ(a_view.matched, b_view.matched);
  EXPECT_TRUE(a_view.matched);
}

TEST(PairwiseMatch, DistantProfilesDoNotMatch) {
  Drbg rng(7);
  PairwiseUser alice(1, {10, 20, 30}, pw_group(), 16, rng);
  PairwiseUser carol(3, {60000, 2, 59999}, pw_group(), 16, rng);
  const auto view =
      alice.evaluate(carol.dh_public(), carol.make_message(alice.dh_public()), BigInt{1} << 20);
  EXPECT_TRUE(view.verified);
  EXPECT_FALSE(view.matched);
}

TEST(PairwiseMatch, TamperedMessageFailsVerification) {
  Drbg rng(8);
  PairwiseUser alice(1, {1, 2, 3}, pw_group(), 16, rng);
  PairwiseUser bob(2, {1, 2, 4}, pw_group(), 16, rng);
  PairwiseMessage msg = bob.make_message(alice.dh_public());
  msg.chain_cipher += BigInt{1};
  const auto view = alice.evaluate(bob.dh_public(), msg, BigInt{1} << 30);
  EXPECT_FALSE(view.verified);
  EXPECT_FALSE(view.matched);

  PairwiseMessage bad_tag = bob.make_message(alice.dh_public());
  bad_tag.tag[0] ^= 1;
  EXPECT_FALSE(alice.evaluate(bob.dh_public(), bad_tag, BigInt{1} << 30).verified);
}

TEST(PairwiseMatch, WrongSessionKeyCannotForge) {
  // A third party (or the server) without the pairwise key cannot craft a
  // message Alice accepts as Bob's.
  Drbg rng(9);
  PairwiseUser alice(1, {1, 2, 3}, pw_group(), 16, rng);
  PairwiseUser bob(2, {1, 2, 4}, pw_group(), 16, rng);
  PairwiseUser mallory(9, {1, 2, 4}, pw_group(), 16, rng);
  // Mallory builds a message keyed to her own DH secret and replays it as
  // if from Bob.
  const PairwiseMessage forged = mallory.make_message(alice.dh_public());
  (void)bob;
  const auto view = alice.evaluate(bob.dh_public(), forged, BigInt{1} << 30);
  EXPECT_FALSE(view.verified);
}

TEST(PairwiseMatch, QuadraticSessionScaling) {
  // The paper's scalability criticism, in numbers: matching N users
  // pairwise needs N(N-1)/2 sessions of fixed byte cost.
  Drbg rng(10);
  PairwiseUser probe(1, {1, 2, 3, 4, 5, 6}, pw_group(), 64, rng);
  const std::size_t per_session = probe.session_bytes();
  EXPECT_GT(per_session, 2 * pw_group()->element_bytes());
  const auto total = [per_session](std::size_t n) { return n * (n - 1) / 2 * per_session; };
  EXPECT_EQ(total(100), 4950u * per_session);
  EXPECT_GT(total(1000), 100u * total(100));  // super-linear growth
}

TEST(PairwiseMatch, RejectsBadParameters) {
  Drbg rng(11);
  EXPECT_THROW(PairwiseUser(1, {}, pw_group(), 16, rng), Error);
  EXPECT_THROW(PairwiseUser(1, {70000}, pw_group(), 16, rng), Error);
  PairwiseUser alice(1, {1}, pw_group(), 16, rng);
  EXPECT_THROW((void)alice.make_message(BigInt{0}), Error);
}

}  // namespace
}  // namespace smatch
