// mOPE tests: order-preserving codes, interactivity accounting, and the
// mutation (rebalancing) behaviour that makes it unsuitable for the
// S-MATCH setting (paper Section II).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "crypto/drbg.hpp"
#include "ope/mope.hpp"

namespace smatch {
namespace {

Bytes mope_key() {
  Drbg rng(99);
  return rng.bytes(16);
}

TEST(Mope, DetEncryptionRoundTrip) {
  const MopeClient client(mope_key());
  for (std::uint64_t v : {0ull, 1ull, 1234567890ull, ~0ull}) {
    const Bytes ct = client.encrypt(v);
    EXPECT_EQ(ct.size(), 16u);
    EXPECT_EQ(client.decrypt(ct), v);
    EXPECT_EQ(client.encrypt(v), ct);  // deterministic
  }
  EXPECT_THROW((void)client.decrypt(Bytes(15, 0)), CryptoError);
  EXPECT_THROW(MopeClient(Bytes(5, 0)), CryptoError);
}

TEST(Mope, CodesPreservePlaintextOrder) {
  const MopeClient client(mope_key());
  MopeServer server;
  Drbg rng(1);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> inserted;  // (value, code)
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = rng.u64() >> 16;
    const std::uint64_t code = server.insert(client.encrypt(v), client);
    inserted.emplace_back(v, code);
  }
  // Refresh codes (rebalancing may have changed earlier ones).
  for (auto& [v, code] : inserted) {
    code = server.encoding_of(client.encrypt(v)).value();
  }
  for (const auto& [v1, c1] : inserted) {
    for (const auto& [v2, c2] : inserted) {
      EXPECT_EQ(v1 < v2, c1 < c2) << v1 << " vs " << v2;
    }
  }
}

TEST(Mope, DuplicateInsertReturnsSameCode) {
  const MopeClient client(mope_key());
  MopeServer server;
  const std::uint64_t c1 = server.insert(client.encrypt(42), client);
  const std::uint64_t c2 = server.insert(client.encrypt(42), client);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(server.size(), 1u);
}

TEST(Mope, InteractionRoundsGrowWithTreeDepth) {
  // The interactivity the paper objects to: every insert costs one round
  // trip per visited node.
  const MopeClient client(mope_key());
  MopeServer server;
  Drbg rng(2);
  for (int i = 0; i < 128; ++i) {
    (void)server.insert(client.encrypt(rng.u64()), client);
  }
  // 128 random inserts: >= n-1 rounds in total (first insert is free),
  // on the order of n * log n.
  EXPECT_GE(server.interaction_rounds(), 127u);
  EXPECT_LE(server.interaction_rounds(), 128u * 64u);
  // Our non-interactive OPE costs zero rounds by construction — the
  // comparison bench (ablation_mope_interaction) quantifies this.
}

TEST(Mope, SequentialInsertTriggersRebalanceAndMutatesCodes) {
  const MopeClient client(mope_key());
  MopeServer server;
  // Strictly increasing inserts build a right spine: depth exceeds the
  // code width at kCodeBits inserts and forces a rebalance.
  const std::uint64_t first_code = server.insert(client.encrypt(0), client);
  for (std::uint64_t v = 1; v < MopeServer::kCodeBits + 4; ++v) {
    (void)server.insert(client.encrypt(v), client);
  }
  EXPECT_GE(server.rebalances(), 1u);
  // The first element's code has changed: mutability in action.
  const std::uint64_t new_code = server.encoding_of(client.encrypt(0)).value();
  EXPECT_NE(new_code, first_code);
  // And order still holds across all entries.
  std::uint64_t prev_code = 0;
  std::uint64_t prev_value = 0;
  bool first = true;
  for (const auto& [ct, code] : server.entries()) {
    const std::uint64_t v = client.decrypt(ct);
    if (!first) {
      EXPECT_GT(v, prev_value);
      EXPECT_GT(code, prev_code);
    }
    first = false;
    prev_value = v;
    prev_code = code;
  }
}

TEST(Mope, EncodingOfUnknownCiphertextIsEmpty) {
  const MopeClient client(mope_key());
  MopeServer server;
  (void)server.insert(client.encrypt(1), client);
  EXPECT_FALSE(server.encoding_of(client.encrypt(2)).has_value());
}

TEST(Mope, EntriesAreSortedByCode) {
  const MopeClient client(mope_key());
  MopeServer server;
  Drbg rng(3);
  for (int i = 0; i < 64; ++i) (void)server.insert(client.encrypt(rng.u64()), client);
  const auto entries = server.entries();
  EXPECT_EQ(entries.size(), server.size());
  EXPECT_TRUE(std::is_sorted(entries.begin(), entries.end(),
                             [](const auto& a, const auto& b) { return a.second < b.second; }));
}

}  // namespace
}  // namespace smatch
