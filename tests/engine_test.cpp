// Sharded match-engine tests: the Status-based error surface (unknown
// querier, stale timestamps, malformed/truncated wire data, tampered
// results), batch-vs-sequential equivalence, and a multi-threaded
// ingest/match stress test meant to run under ThreadSanitizer
// (-DSMATCH_SANITIZE=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/smatch.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"
#include "net/channel.hpp"
#include "obs/trace.hpp"  // SMATCH_OBS_ENABLED for the PoolMetrics asserts

namespace smatch {
namespace {

UploadMessage make_upload(UserId id, const Bytes& index, std::uint64_t chain) {
  UploadMessage up;
  up.user_id = id;
  up.key_index = index;
  up.chain_cipher = BigInt{chain};
  up.chain_cipher_bits = 64;
  up.auth_token = to_bytes("token-" + std::to_string(id));
  return up;
}

// ---------------------------------------------------------------------------
// Thread pool

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  pool.parallel_for(0, [&](std::size_t) { FAIL(); });
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(100, [](std::size_t i) {
        if (i == 57) throw Error("boom");
      }),
      Error);
  // Pool is still usable afterwards.
  std::atomic<std::size_t> n{0};
  pool.parallel_for(10, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 10u);
}

// ---------------------------------------------------------------------------
// Typed error paths

TEST(EngineErrors, UnknownQuerier) {
  MatchServer server;
  EXPECT_EQ(server.match({1, 0, 42}, 5).code(), StatusCode::kUnknownUser);
  EXPECT_EQ(server.match_within({1, 0, 42}, 2).code(), StatusCode::kUnknownUser);
}

TEST(EngineErrors, StaleAndReplayedTimestamps) {
  MatchServer server(ServerOptions{.replay_protection = true});
  const Bytes g(32, 1);
  ASSERT_TRUE(server.ingest(make_upload(1, g, 10)).is_ok());
  ASSERT_TRUE(server.ingest(make_upload(2, g, 20)).is_ok());

  EXPECT_TRUE(server.match({1, 1000, 1}, 5).is_ok());
  // Replay (same timestamp) and stale (older) queries rejected.
  EXPECT_EQ(server.match({2, 1000, 1}, 5).code(), StatusCode::kStaleTimestamp);
  EXPECT_EQ(server.match({3, 999, 1}, 5).code(), StatusCode::kStaleTimestamp);
  // Fresh timestamp accepted; other users independent.
  EXPECT_TRUE(server.match({4, 1001, 1}, 5).is_ok());
  EXPECT_TRUE(server.match({5, 1000, 2}, 5).is_ok());
  // match_within enforces the same policy.
  EXPECT_EQ(server.match_within({6, 900, 1}, 2).code(), StatusCode::kStaleTimestamp);
  // An unknown querier never touches the replay clock.
  EXPECT_EQ(server.match({7, 5000, 99}, 5).code(), StatusCode::kUnknownUser);
  EXPECT_EQ(server.metrics().replay_rejections, 3u);
}

TEST(EngineErrors, TruncatedAndCorruptedWireData) {
  const Bytes wire = make_upload(3, Bytes(32, 5), 77).serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const auto parsed = UploadMessage::parse(BytesView(wire).subspan(0, len));
    ASSERT_FALSE(parsed.is_ok()) << "truncation to " << len << " parsed";
    EXPECT_EQ(parsed.code(), StatusCode::kMalformedMessage);
  }
  // A version bump is distinguishable from corruption.
  Bytes versioned = wire;
  versioned[2] = kWireVersion + 3;
  EXPECT_EQ(UploadMessage::parse(versioned).code(), StatusCode::kUnsupportedVersion);
}

TEST(EngineErrors, TamperedResultsYieldZeroVerifiedWithoutThrowing) {
  // Full client stack so verification is real: one community, everyone
  // shares a profile key.
  Drbg rng(41);
  DatasetSpec spec;
  spec.name = "engine-tamper";
  spec.num_users = 8;
  for (int i = 0; i < 6; ++i) {
    spec.attributes.push_back(AttributeSpec::uniform("a" + std::to_string(i), 6.0));
  }
  SchemeParams params;
  params.attribute_bits = 32;
  params.rs_threshold = 8;
  auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());
  const ClientConfig config = make_client_config(spec, params, group);
  RsaOprfServer oprf(RsaKeyPair::generate(rng, 512));
  const Dataset ds = Dataset::generate_clustered(spec, rng, 1, 0);

  MatchServer server;
  std::vector<Client> clients;
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    clients.push_back(
        Client::create(static_cast<UserId>(u + 1), ds.profile(u), config).value());
    clients.back().generate_key(oprf, rng);
    ASSERT_TRUE(server.ingest(clients.back().make_upload(rng)).is_ok());
  }

  const QueryRequest q = clients[0].make_query(9, 100);
  const QueryResult honest = server.match(q, 5).value();
  ASSERT_FALSE(honest.entries.empty());

  const auto honest_report = clients[0].verify_result(q, honest);
  ASSERT_TRUE(honest_report.is_ok());
  EXPECT_TRUE(honest_report->all_verified());
  EXPECT_EQ(honest_report->verified.size(), honest.entries.size());

  for (const ServerAttack attack :
       {ServerAttack::kForgeToken, ServerAttack::kSwapIdentity}) {
    const QueryResult fake = tamper_result(honest, attack, rng);
    const auto report = clients[0].verify_result(q, fake);
    ASSERT_TRUE(report.is_ok());  // tampering is reported, not thrown
    EXPECT_TRUE(report->verified.empty());
    EXPECT_EQ(report->rejected, fake.entries.size());
  }

  // A response that does not echo the query is a typed error.
  QueryResult spliced = honest;
  spliced.query_id ^= 1;
  EXPECT_EQ(clients[0].verify_result(q, spliced).code(), StatusCode::kMalformedMessage);
}

// ---------------------------------------------------------------------------
// Batch equivalence

TEST(EngineBatch, MatchBatchEqualsSequentialMatch) {
  MatchServer batch_server(ServerOptions{.num_shards = 8, .batch_threads = 4});
  MatchServer seq_server(ServerOptions{.num_shards = 1});
  Drbg rng(17);
  std::vector<Bytes> indexes;
  for (int g = 0; g < 12; ++g) indexes.push_back(rng.bytes(32));

  std::vector<UploadMessage> uploads;
  for (UserId id = 1; id <= 300; ++id) {
    uploads.push_back(make_upload(id, indexes[id % 12], rng.below(1u << 30)));
  }
  for (const Status& s : batch_server.ingest_batch(uploads)) ASSERT_TRUE(s.is_ok());
  for (const auto& up : uploads) ASSERT_TRUE(seq_server.ingest(up).is_ok());
  EXPECT_EQ(batch_server.num_users(), 300u);

  std::vector<QueryRequest> queries;
  for (UserId id = 1; id <= 300; ++id) queries.push_back({id, 0, id});
  queries.push_back({999, 0, 4242});  // unknown querier mid-batch

  const auto batched = batch_server.match_batch(queries, 5);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto sequential = seq_server.match(queries[i], 5);
    ASSERT_EQ(batched[i].is_ok(), sequential.is_ok()) << i;
    if (!batched[i].is_ok()) {
      EXPECT_EQ(batched[i].code(), sequential.code());
      continue;
    }
    ASSERT_EQ(batched[i]->entries.size(), sequential->entries.size()) << i;
    for (std::size_t e = 0; e < sequential->entries.size(); ++e) {
      EXPECT_EQ(batched[i]->entries[e].user_id, sequential->entries[e].user_id);
      EXPECT_EQ(batched[i]->entries[e].auth_token, sequential->entries[e].auth_token);
    }
  }

  // The batch path amortizes SORT: one sort per distinct live group, and
  // strictly fewer comparisons than 300 sequential sorts.
  const ServerMetrics m = batch_server.metrics();
  EXPECT_EQ(m.batch_group_sorts, 12u);
  EXPECT_LT(m.comparisons, seq_server.comparisons());

  // Batch paths ran through the engine's pool, and the snapshot says so.
  EXPECT_GE(m.pool.parallel_fors, 2u);  // ingest_batch + match_batch
  EXPECT_GT(m.pool.tasks_executed, 0u);
  EXPECT_EQ(m.pool.queue_depth, 0u);  // drained after the barrier
#if SMATCH_OBS_ENABLED
  // The scheduling histograms fold into the same snapshot.
  EXPECT_EQ(m.pool.task_run_ns.count, m.pool.tasks_executed);
  EXPECT_GT(m.pool.task_run_ns.sum, 0u);
  // So do the engine's own latency histograms.
  EXPECT_EQ(m.ingest_latency_ns.count, m.ingests);
  EXPECT_EQ(m.match_latency_ns.count, m.matches);
  EXPECT_GT(m.match_latency_ns.p99(), 0u);
#endif
  // The sequential engine never created a pool; its snapshot stays zero.
  EXPECT_EQ(seq_server.metrics().pool.parallel_fors, 0u);
}

TEST(EngineBatch, BatchReplayClocksAdvanceInSubmissionOrder) {
  MatchServer server(ServerOptions{.replay_protection = true});
  const Bytes g(32, 9);
  ASSERT_TRUE(server.ingest(make_upload(1, g, 1)).is_ok());
  ASSERT_TRUE(server.ingest(make_upload(2, g, 2)).is_ok());

  const std::vector<QueryRequest> queries = {
      {1, 100, 1}, {2, 100, 1}, {3, 101, 1}, {4, 50, 2}};
  const auto results = server.match_batch(queries, 3);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].is_ok());
  EXPECT_EQ(results[1].code(), StatusCode::kStaleTimestamp);  // replay of t=100
  EXPECT_TRUE(results[2].is_ok());                            // fresh t=101
  EXPECT_TRUE(results[3].is_ok());                            // other user
}

// ---------------------------------------------------------------------------
// Concurrency stress (run under -DSMATCH_SANITIZE=thread)

TEST(EngineStress, ConcurrentIngestAndMatchKeepInvariants) {
  MatchServer server(ServerOptions{.num_shards = 8, .batch_threads = 2});
  constexpr std::size_t kUsers = 64;
  constexpr std::size_t kGroups = 6;
  constexpr int kRoundsPerWriter = 40;
  constexpr int kWriters = 3;
  constexpr int kReaders = 3;

  // Deterministic per-thread key indexes: every group index is shared.
  std::vector<Bytes> indexes;
  for (std::size_t gi = 0; gi < kGroups; ++gi) {
    indexes.push_back(Bytes(32, static_cast<std::uint8_t>(0x10 + gi * 13)));
  }

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;

  // Writers continuously re-upload users, moving them between groups.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Drbg rng(1000 + w);
      for (int round = 0; round < kRoundsPerWriter; ++round) {
        for (UserId id = 1; id <= kUsers; ++id) {
          const Bytes& index = indexes[(id + round + w) % kGroups];
          const Status s = server.ingest(make_upload(id, index, rng.below(1u << 20)));
          if (!s.is_ok()) failed.store(true);
        }
      }
    });
  }

  // Readers hammer match / match_batch / metrics. Every status must be a
  // well-typed code; results may legitimately be kUnknownUser early on or
  // kEmptyGroup during a re-upload race.
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      std::vector<QueryRequest> queries;
      for (UserId id = 1; id <= kUsers; ++id) queries.push_back({1, 0, id});
      for (int round = 0; round < kRoundsPerWriter; ++round) {
        for (UserId id = 1; id <= kUsers; ++id) {
          const auto res = server.match({1, 0, id}, 4);
          if (!res.is_ok() && res.code() != StatusCode::kUnknownUser &&
              res.code() != StatusCode::kEmptyGroup) {
            failed.store(true);
          }
        }
        if (r == 0) {
          for (const auto& res : server.match_batch(queries, 4)) {
            if (!res.is_ok() && res.code() != StatusCode::kUnknownUser &&
                res.code() != StatusCode::kEmptyGroup) {
              failed.store(true);
            }
          }
        }
        const ServerMetrics m = server.metrics();
        if (m.ingests > static_cast<std::uint64_t>(kWriters) * kRoundsPerWriter * kUsers) {
          failed.store(true);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());

  // Quiescent invariants: every user registered exactly once, resident in
  // exactly one group, and totals agree across views.
  EXPECT_EQ(server.num_users(), kUsers);
  const ServerMetrics m = server.metrics();
  std::uint64_t resident = 0;
  for (const auto& s : m.shards) resident += s.users;
  EXPECT_EQ(resident, kUsers);
  EXPECT_EQ(m.ingests, static_cast<std::uint64_t>(kWriters) * kRoundsPerWriter * kUsers);
  std::uint64_t histogram_users = 0;
  for (const auto& [size, count] : m.group_size_histogram) {
    histogram_users += size * count;
  }
  EXPECT_EQ(histogram_users, kUsers);
  for (UserId id = 1; id <= kUsers; ++id) {
    EXPECT_GE(server.group_size_of(id), 1u) << id;
    const auto res = server.match({1, 0, id}, 4);
    EXPECT_TRUE(res.is_ok()) << res.status().to_string();
  }
}

}  // namespace
}  // namespace smatch
