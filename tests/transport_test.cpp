// Transport subsystem tests: frame codec, in-process transport pair
// (blocking and readiness modes), seeded fault injection, session
// retry/replay semantics, and the event-loop NetServer — admission
// control, pipelining, overload shedding, and a 1k-connection churn
// stress (also the TSan target — scripts/ci.sh runs this binary under
// -fsanitize=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <poll.h>
#include <thread>
#include <vector>

#include "net/fault.hpp"
#include "net/inproc_transport.hpp"
#include "net/server.hpp"
#include "net/session.hpp"
#include "net/transport.hpp"
#include "obs/registry.hpp"

namespace smatch {
namespace {

constexpr std::chrono::milliseconds kIo{1000};

Bytes pattern_bytes(std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(i * 31 + 7);
  return out;
}

// --- Frame codec ----------------------------------------------------------

TEST(FrameCodec, Crc32MatchesTheIeeeCheckValue) {
  // The standard CRC-32 check string.
  EXPECT_EQ(crc32(to_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(BytesView{}), 0x00000000u);
}

TEST(FrameCodec, RoundTripsAcrossSizesAndChunkings) {
  for (const std::size_t size : {std::size_t{0}, std::size_t{1}, std::size_t{1000}}) {
    const Bytes payload = pattern_bytes(size);
    const Bytes wire = encode_frame(MessageKind::kUpload, payload);
    EXPECT_EQ(wire.size(), payload.size() + kFrameOverheadBytes);

    // Whole-frame feed and byte-at-a-time feed must both decode it.
    for (const std::size_t chunk : {wire.size(), std::size_t{1}}) {
      FrameDecoder decoder;
      std::size_t off = 0;
      while (off < wire.size()) {
        const std::size_t n = std::min(chunk, wire.size() - off);
        decoder.feed(BytesView(wire).subspan(off, n));
        off += n;
      }
      const StatusOr<std::optional<Frame>> frame = decoder.next();
      ASSERT_TRUE(frame.is_ok());
      ASSERT_TRUE(frame->has_value()) << "size=" << size << " chunk=" << chunk;
      EXPECT_EQ((*frame)->kind, MessageKind::kUpload);
      EXPECT_EQ((*frame)->payload, payload);
      EXPECT_EQ(decoder.buffered(), 0u);
    }
  }
}

TEST(FrameCodec, DecodesBackToBackFramesFromOneFeed) {
  Bytes stream = encode_frame(MessageKind::kQuery, pattern_bytes(10));
  const Bytes second = encode_frame(MessageKind::kResult, pattern_bytes(20));
  stream.insert(stream.end(), second.begin(), second.end());

  FrameDecoder decoder;
  decoder.feed(stream);
  auto first = decoder.next();
  ASSERT_TRUE(first.is_ok() && first->has_value());
  EXPECT_EQ((*first)->kind, MessageKind::kQuery);
  auto next = decoder.next();
  ASSERT_TRUE(next.is_ok() && next->has_value());
  EXPECT_EQ((*next)->kind, MessageKind::kResult);
  EXPECT_EQ((*next)->payload, pattern_bytes(20));
}

TEST(FrameCodec, CorruptionIsDroppedAndTheStreamStaysInSync) {
  Bytes bad = encode_frame(MessageKind::kQuery, pattern_bytes(10));
  bad[6] ^= 0x40;  // payload bit flip: CRC must catch it
  const Bytes good = encode_frame(MessageKind::kResult, pattern_bytes(5));

  FrameDecoder decoder;
  decoder.feed(bad);
  decoder.feed(good);
  EXPECT_EQ(decoder.next().code(), StatusCode::kMalformedMessage);
  // The corrupted frame was consumed; the following frame decodes.
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.is_ok() && frame->has_value());
  EXPECT_EQ((*frame)->kind, MessageKind::kResult);
}

TEST(FrameCodec, UnknownKindByteIsMalformed) {
  Bytes wire = encode_frame(MessageKind::kOther, pattern_bytes(4));
  wire[4] = 0x2a;  // kind byte outside the MessageKind enum
  // Re-stamp the CRC so only the kind is wrong, not the checksum.
  const std::uint32_t crc = crc32(BytesView(wire).subspan(4, wire.size() - 8));
  for (int i = 0; i < 4; ++i) {
    wire[wire.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (24 - 8 * i));
  }
  FrameDecoder decoder;
  decoder.feed(wire);
  EXPECT_EQ(decoder.next().code(), StatusCode::kMalformedMessage);
}

TEST(FrameCodec, UnframeableLengthTearsTheConnectionDown) {
  Bytes hostile = {0xff, 0xff, 0xff, 0xff, 0x01};  // claims a ~4 GiB frame
  FrameDecoder decoder;
  decoder.feed(hostile);
  EXPECT_EQ(decoder.next().code(), StatusCode::kConnectionReset);
}

// --- In-process transport -------------------------------------------------

TEST(InProc, SendRecvBothDirectionsWithStats) {
  auto [client, server] = InProcTransport::make_pair();
  ASSERT_TRUE(client->send(MessageKind::kUpload, pattern_bytes(100), kIo).is_ok());
  const auto at_server = server->recv(kIo);
  ASSERT_TRUE(at_server.is_ok());
  EXPECT_EQ(at_server->kind, MessageKind::kUpload);
  EXPECT_EQ(at_server->payload, pattern_bytes(100));

  ASSERT_TRUE(server->send(MessageKind::kResult, pattern_bytes(7), kIo).is_ok());
  const auto at_client = client->recv(kIo);
  ASSERT_TRUE(at_client.is_ok());
  EXPECT_EQ(at_client->payload, pattern_bytes(7));

  // Payload-byte accounting, per kind, both endpoints.
  EXPECT_EQ(client->stats().sent_of(MessageKind::kUpload), 100u);
  EXPECT_EQ(server->stats().received_of(MessageKind::kUpload), 100u);
  EXPECT_EQ(server->stats().sent_of(MessageKind::kResult), 7u);
  EXPECT_EQ(client->stats().received_of(MessageKind::kResult), 7u);
  EXPECT_EQ(client->stats().frames_sent, 1u);
  EXPECT_EQ(client->stats().frames_received, 1u);
}

TEST(InProc, MirrorsPayloadBytesIntoTheSimChannel) {
  SimChannel sim;
  auto [client, server] = InProcTransport::make_pair(&sim);
  ASSERT_TRUE(client->send(MessageKind::kQuery, pattern_bytes(19), kIo).is_ok());
  ASSERT_TRUE(server->send(MessageKind::kResult, pattern_bytes(55), kIo).is_ok());
  EXPECT_EQ(sim.uplink().bytes, 19u);
  EXPECT_EQ(sim.downlink().bytes, 55u);
  EXPECT_EQ(sim.bytes_of(MessageKind::kQuery), 19u);
  EXPECT_EQ(sim.bytes_of(MessageKind::kResult), 55u);
}

TEST(InProc, ReadinessModeDeliversFramesWithoutBlocking) {
  auto [client, server] = InProcTransport::make_pair();
  EXPECT_EQ(server->recv_some().code(), StatusCode::kWouldBlock);

  const int fd = server->pollable_fd();
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(client->send_some(MessageKind::kUpload, pattern_bytes(33)).is_ok());
  pollfd pfd{fd, POLLIN, 0};
  ASSERT_EQ(::poll(&pfd, 1, 1000), 1) << "enqueue must signal the pollable fd";

  const auto frame = server->recv_some();
  ASSERT_TRUE(frame.is_ok());
  EXPECT_EQ(frame->kind, MessageKind::kUpload);
  EXPECT_EQ(frame->payload, pattern_bytes(33));
  EXPECT_EQ(server->recv_some().code(), StatusCode::kWouldBlock);

  // Close wakes the poller and surfaces as a typed reset once drained.
  ASSERT_TRUE(client->close().is_ok());
  pollfd pfd2{fd, POLLIN, 0};
  ASSERT_EQ(::poll(&pfd2, 1, 1000), 1);
  EXPECT_EQ(server->recv_some().code(), StatusCode::kConnectionReset);
}

TEST(InProc, ReadinessDelayFaultHoldsFramesInsteadOfSleeping) {
  auto [client, server] = InProcTransport::make_pair();
  FaultInjector delays(FaultSpec{.delay = 1.0,
                                 .delay_ms = std::chrono::milliseconds{40},
                                 .seed = 2});
  client->set_fault_injector(&delays);

  const auto t0 = std::chrono::steady_clock::now();
  const Status staged = client->send_some(MessageKind::kQuery, pattern_bytes(8));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(staged.code(), StatusCode::kWouldBlock) << "delay must stage, not sleep";
  EXPECT_LT(elapsed, std::chrono::milliseconds{30});
  EXPECT_GT(client->pending_out_bytes(), 0u);

  // flush_some keeps reporting kWouldBlock until the hold expires.
  EXPECT_EQ(client->flush_some().code(), StatusCode::kWouldBlock);
  std::this_thread::sleep_for(std::chrono::milliseconds{60});
  ASSERT_TRUE(client->flush_some().is_ok());
  EXPECT_EQ(client->pending_out_bytes(), 0u);
  const auto frame = server->recv(kIo);
  ASSERT_TRUE(frame.is_ok());
  EXPECT_EQ(frame->payload, pattern_bytes(8));
}

TEST(InProc, TimeoutAndCloseSurfaceAsTypedStatuses) {
  auto [client, server] = InProcTransport::make_pair();
  EXPECT_EQ(client->recv(std::chrono::milliseconds{10}).code(), StatusCode::kTimeout);

  ASSERT_TRUE(server->close().is_ok());
  EXPECT_EQ(client->recv(kIo).code(), StatusCode::kConnectionReset);
  EXPECT_EQ(client->send(MessageKind::kOther, pattern_bytes(1), kIo).code(),
            StatusCode::kConnectionReset);
}

// --- Fault injection ------------------------------------------------------

TEST(Faults, SameSeedSameSchedule) {
  const FaultSpec spec{.drop = 0.3, .corrupt = 0.2, .seed = 99};
  for (int round = 0; round < 2; ++round) {
    FaultInjector a(spec);
    FaultInjector b(spec);
    for (int i = 0; i < 50; ++i) {
      std::chrono::milliseconds da{0};
      std::chrono::milliseconds db{0};
      EXPECT_EQ(a.on_send(pattern_bytes(20), &da), b.on_send(pattern_bytes(20), &db));
    }
    EXPECT_EQ(a.counters().dropped, b.counters().dropped);
    EXPECT_EQ(a.counters().corrupted, b.counters().corrupted);
    EXPECT_GT(a.counters().total(), 0u);
  }
}

TEST(Faults, ReorderHoldsAFrameAndReleasesItBehindTheNext) {
  FaultInjector inject(FaultSpec{.reorder = 1.0, .seed = 3});
  std::chrono::milliseconds delay{0};
  const auto first = inject.on_send(pattern_bytes(4), &delay);
  EXPECT_TRUE(first.empty());  // held back
  const auto second = inject.on_send(pattern_bytes(8), &delay);
  ASSERT_EQ(second.size(), 2u);  // the next frame, then the held one
  EXPECT_EQ(second[0], pattern_bytes(8));
  EXPECT_EQ(second[1], pattern_bytes(4));
  EXPECT_EQ(inject.counters().reordered, 1u);  // one reorder event = one held frame
}

TEST(Faults, CorruptedFramesAreCaughtByTheCrcAndCounted) {
  auto [client, server] = InProcTransport::make_pair();
  FaultInjector corrupt(FaultSpec{.corrupt = 1.0, .seed = 11});
  client->set_fault_injector(&corrupt);
  ASSERT_TRUE(client->send(MessageKind::kUpload, pattern_bytes(64), kIo).is_ok());
  // The only frame on the wire is corrupted: the receiver drops it and
  // times out rather than delivering damaged bytes.
  EXPECT_EQ(server->recv(std::chrono::milliseconds{50}).code(), StatusCode::kTimeout);
  EXPECT_EQ(server->stats().crc_drops, 1u);
  EXPECT_EQ(corrupt.counters().corrupted, 1u);
}

// --- Session layer --------------------------------------------------------

/// Spins up a serve_connection loop for the server end of a pair.
class ServedConnection {
 public:
  ServedConnection(std::unique_ptr<Transport> server_end, const FrameDispatcher& d)
      : transport_(std::move(server_end)),
        thread_([this, &d] { (void)serve_connection(*transport_, d, stop_); }) {}
  ~ServedConnection() {
    stop_.store(true);
    thread_.join();
  }

 private:
  std::unique_ptr<Transport> transport_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

FrameDispatcher echo_dispatcher(std::atomic<std::uint64_t>* invocations = nullptr) {
  FrameDispatcher dispatcher;
  dispatcher.register_handler(MessageKind::kOther,
                              [invocations](BytesView body) -> StatusOr<Bytes> {
                                if (invocations != nullptr) invocations->fetch_add(1);
                                Bytes out(body.begin(), body.end());
                                out.push_back(0x21);
                                return out;
                              });
  dispatcher.register_handler(MessageKind::kAuth,
                              [](BytesView) -> StatusOr<Bytes> {
                                return Status(StatusCode::kBudgetExhausted,
                                              "quota spent");
                              });
  return dispatcher;
}

TEST(Session, CallRoundTripsAndErrorsPassThroughTyped) {
  const FrameDispatcher dispatcher = echo_dispatcher();
  auto [client_end, server_end] = InProcTransport::make_pair();
  ServedConnection served(std::move(server_end), dispatcher);

  SessionClient session(*client_end);
  const StatusOr<Bytes> echoed = session.call(MessageKind::kOther, pattern_bytes(9));
  ASSERT_TRUE(echoed.is_ok());
  Bytes expected = pattern_bytes(9);
  expected.push_back(0x21);
  EXPECT_EQ(*echoed, expected);

  // Handler errors arrive as the same typed status the handler returned.
  EXPECT_EQ(session.call(MessageKind::kAuth, {}).code(), StatusCode::kBudgetExhausted);
  // A kind nobody registered is a malformed request, not a hang.
  EXPECT_EQ(session.call(MessageKind::kUpload, {}).code(),
            StatusCode::kMalformedMessage);
  EXPECT_EQ(session.stats().calls, 3u);
  EXPECT_EQ(session.stats().retries, 0u);
}

TEST(Session, RetriesConvergeUnderSeededDrops) {
  const std::uint64_t retries_before =
      obs::Registry::global().counter("smatch_net_retries_total")->load();

  const FrameDispatcher dispatcher = echo_dispatcher();
  auto [client_end, server_end] = InProcTransport::make_pair();
  ServedConnection served(std::move(server_end), dispatcher);

  FaultInjector drops(FaultSpec{.drop = 0.5, .seed = 7});
  client_end->set_fault_injector(&drops);

  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.attempt_timeout = std::chrono::milliseconds{100};
  policy.initial_backoff = std::chrono::milliseconds{1};
  policy.max_backoff = std::chrono::milliseconds{4};
  SessionClient session(*client_end, policy, /*seed=*/5);

  std::size_t succeeded = 0;
  for (int i = 0; i < 10; ++i) {
    succeeded += session.call(MessageKind::kOther, pattern_bytes(16)).is_ok();
  }
  EXPECT_EQ(succeeded, 10u) << "retries must recover every dropped request";
  EXPECT_GT(session.stats().retries, 0u);
  EXPECT_GT(drops.counters().dropped, 0u);

  // Acceptance check: the retry metric is visible in the global registry.
  EXPECT_GT(obs::Registry::global().counter("smatch_net_retries_total")->load(),
            retries_before);
  EXPECT_NE(obs::Registry::global().json().find("smatch_net_retries_total"),
            std::string::npos);
}

TEST(Session, TotalLossExhaustsTheRetryBudget) {
  const FrameDispatcher dispatcher = echo_dispatcher();
  auto [client_end, server_end] = InProcTransport::make_pair();
  ServedConnection served(std::move(server_end), dispatcher);

  FaultInjector blackhole(FaultSpec{.drop = 1.0, .seed = 1});
  client_end->set_fault_injector(&blackhole);

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.attempt_timeout = std::chrono::milliseconds{20};
  policy.initial_backoff = std::chrono::milliseconds{1};
  SessionClient session(*client_end, policy);
  EXPECT_EQ(session.call(MessageKind::kOther, pattern_bytes(3)).code(),
            StatusCode::kRetriesExhausted);
  EXPECT_EQ(session.stats().timeouts, 3u);
}

TEST(Session, ReplayCacheMakesRetransmitsIdempotent) {
  std::atomic<std::uint64_t> invocations{0};
  const FrameDispatcher dispatcher = echo_dispatcher(&invocations);

  Envelope request;
  request.request_id = 42;
  request.body = pattern_bytes(5);
  const Bytes wire = request.serialize();

  SessionState state;
  const Bytes first = dispatcher.dispatch(MessageKind::kOther, wire, state);
  const Bytes replay = dispatcher.dispatch(MessageKind::kOther, wire, state);
  EXPECT_EQ(invocations.load(), 1u) << "the handler must run once per request id";
  EXPECT_EQ(first, replay) << "a retransmit gets the byte-identical response";

  // A fresh id runs the handler again.
  request.request_id = 43;
  (void)dispatcher.dispatch(MessageKind::kOther, request.serialize(), state);
  EXPECT_EQ(invocations.load(), 2u);
}

TEST(Session, ReplayCacheEvictsBeyondCapacity) {
  SessionState state(/*capacity=*/2);
  state.remember(1, pattern_bytes(1));
  state.remember(2, pattern_bytes(2));
  state.remember(3, pattern_bytes(3));
  EXPECT_FALSE(state.lookup(1).has_value());  // evicted, least recent first
  ASSERT_TRUE(state.lookup(2).has_value());
  ASSERT_TRUE(state.lookup(3).has_value());
  EXPECT_EQ(state.evictions(), 1u);
}

TEST(Session, ReplayCacheEvictsLeastRecentlyUsedAndCountsIt) {
  auto& evictions =
      *obs::Registry::global().counter("smatch_net_replay_evictions_total");
  const std::uint64_t before = evictions.load();

  SessionState state(/*capacity=*/2);
  state.remember(1, pattern_bytes(1));
  state.remember(2, pattern_bytes(2));
  // A replay hit refreshes id 1; id 2 becomes the eviction candidate.
  ASSERT_TRUE(state.lookup(1).has_value());
  state.remember(3, pattern_bytes(3));
  EXPECT_FALSE(state.lookup(2).has_value()) << "LRU entry must be the one evicted";
  EXPECT_TRUE(state.lookup(1).has_value());
  EXPECT_TRUE(state.lookup(3).has_value());
  EXPECT_EQ(state.evictions(), 1u);
  EXPECT_EQ(evictions.load(), before + 1);
}

TEST(Session, DispatcherRejectsGarbageWithoutCrashing) {
  const FrameDispatcher dispatcher = echo_dispatcher();
  SessionState state;
  const Bytes response = dispatcher.dispatch(MessageKind::kOther, pattern_bytes(3), state);
  const StatusOr<Envelope> parsed = Envelope::parse(response);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(parsed->is_response);
  EXPECT_EQ(parsed->status, StatusCode::kMalformedMessage);
}

// --- NetServer ------------------------------------------------------------

TEST(NetServer, ServesManyInProcConnectionsConcurrently) {
  std::atomic<std::uint64_t> invocations{0};
  NetServer server(echo_dispatcher(&invocations));
  ServerConfig config;
  config.io_threads = 2;
  config.dispatch_workers = 4;
  ASSERT_TRUE(server.start(config).is_ok());

  constexpr int kClients = 4;
  constexpr int kCallsPerClient = 25;
  std::vector<std::unique_ptr<Transport>> ends;
  for (int c = 0; c < kClients; ++c) {
    auto [client_end, server_end] = InProcTransport::make_pair();
    server.attach(std::move(server_end));
    ends.push_back(std::move(client_end));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SessionClient session(*ends[static_cast<std::size_t>(c)], RetryPolicy{},
                            /*seed=*/static_cast<std::uint64_t>(c) + 1);
      for (int i = 0; i < kCallsPerClient; ++i) {
        if (!session.call(MessageKind::kOther, pattern_bytes(32)).is_ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(invocations.load(), static_cast<std::uint64_t>(kClients * kCallsPerClient));
  server.stop();
  EXPECT_EQ(server.active_connections(), 0u);
}

TEST(NetServer, PipelinedRequestsCompleteOutOfOrderOnOneConnection) {
  FrameDispatcher dispatcher;
  dispatcher.register_handler(MessageKind::kQuery,
                              [](BytesView) -> StatusOr<Bytes> {
                                std::this_thread::sleep_for(
                                    std::chrono::milliseconds{150});
                                return to_bytes("slow");
                              });
  dispatcher.register_handler(
      MessageKind::kOprf,
      [](BytesView) -> StatusOr<Bytes> { return to_bytes("fast"); });
  NetServer server(std::move(dispatcher));
  ServerConfig config;
  config.dispatch_workers = 2;
  ASSERT_TRUE(server.start(config).is_ok());

  auto [client_end, server_end] = InProcTransport::make_pair();
  server.attach(std::move(server_end));

  // Two raw request envelopes back to back, no waiting in between.
  Envelope slow;
  slow.request_id = 101;
  Envelope fast;
  fast.request_id = 202;
  ASSERT_TRUE(client_end->send(MessageKind::kQuery, slow.serialize(), kIo).is_ok());
  ASSERT_TRUE(client_end->send(MessageKind::kOprf, fast.serialize(), kIo).is_ok());

  const auto first = client_end->recv(kIo);
  ASSERT_TRUE(first.is_ok());
  const auto first_env = Envelope::parse(first->payload);
  ASSERT_TRUE(first_env.is_ok());
  EXPECT_EQ(first_env->request_id, 202u)
      << "the fast response must overtake the slow request it arrived behind";
  EXPECT_EQ(first_env->body, to_bytes("fast"));

  const auto second = client_end->recv(kIo);
  ASSERT_TRUE(second.is_ok());
  const auto second_env = Envelope::parse(second->payload);
  ASSERT_TRUE(second_env.is_ok());
  EXPECT_EQ(second_env->request_id, 101u);
  EXPECT_EQ(second_env->body, to_bytes("slow"));
}

TEST(NetServer, OverloadReturnsTypedStatusNotAHang) {
  FrameDispatcher dispatcher;
  dispatcher.register_handler(MessageKind::kOther,
                              [](BytesView body) -> StatusOr<Bytes> {
                                std::this_thread::sleep_for(
                                    std::chrono::milliseconds{200});
                                return Bytes(body.begin(), body.end());
                              });
  NetServer server(std::move(dispatcher));
  ServerConfig config;
  config.max_inflight_per_connection = 1;
  config.dispatch_workers = 2;
  ASSERT_TRUE(server.start(config).is_ok());

  auto [client_end, server_end] = InProcTransport::make_pair();
  server.attach(std::move(server_end));

  Envelope first;
  first.request_id = 1;
  Envelope second;
  second.request_id = 2;
  ASSERT_TRUE(client_end->send(MessageKind::kOther, first.serialize(), kIo).is_ok());
  ASSERT_TRUE(client_end->send(MessageKind::kOther, second.serialize(), kIo).is_ok());

  // The shed reply arrives long before the slow in-flight handler ends.
  const auto shed = client_end->recv(kIo);
  ASSERT_TRUE(shed.is_ok());
  const auto shed_env = Envelope::parse(shed->payload);
  ASSERT_TRUE(shed_env.is_ok());
  EXPECT_EQ(shed_env->request_id, 2u);
  EXPECT_EQ(shed_env->status, StatusCode::kOverloaded);

  const auto done = client_end->recv(kIo);
  ASSERT_TRUE(done.is_ok());
  const auto done_env = Envelope::parse(done->payload);
  ASSERT_TRUE(done_env.is_ok());
  EXPECT_EQ(done_env->request_id, 1u);
  EXPECT_EQ(done_env->status, StatusCode::kOk);

  // The shed reply was not replay-cached: a retransmit succeeds now.
  ASSERT_TRUE(client_end->send(MessageKind::kOther, second.serialize(), kIo).is_ok());
  const auto retry = client_end->recv(kIo);
  ASSERT_TRUE(retry.is_ok());
  const auto retry_env = Envelope::parse(retry->payload);
  ASSERT_TRUE(retry_env.is_ok());
  EXPECT_EQ(retry_env->status, StatusCode::kOk);
}

TEST(NetServer, AdmissionCapShedsConnectionsBeyondMax) {
  auto& shed =
      *obs::Registry::global().counter("smatch_net_shed_connections_total");
  const std::uint64_t shed_before = shed.load();

  NetServer server(echo_dispatcher());
  ServerConfig config;
  config.max_connections = 2;
  ASSERT_TRUE(server.start(config).is_ok());

  std::vector<std::unique_ptr<Transport>> admitted;
  for (int i = 0; i < 2; ++i) {
    auto [client_end, server_end] = InProcTransport::make_pair();
    server.attach(std::move(server_end));
    admitted.push_back(std::move(client_end));
  }
  auto [third_client, third_server] = InProcTransport::make_pair();
  server.attach(std::move(third_server));

  // The connection beyond the cap was closed at admission, not queued.
  EXPECT_EQ(third_client->recv(kIo).code(), StatusCode::kConnectionReset);
  EXPECT_EQ(shed.load(), shed_before + 1);
  EXPECT_EQ(server.active_connections(), 2u);

  // Admitted connections keep working.
  SessionClient session(*admitted[0]);
  EXPECT_TRUE(session.call(MessageKind::kOther, pattern_bytes(4)).is_ok());
}

TEST(NetServer, PollFallbackBackendServesRpc) {
  NetServer server(echo_dispatcher());
  ServerConfig config;
  config.force_poll_fallback = true;
  ASSERT_TRUE(server.start(config).is_ok());

  auto [client_end, server_end] = InProcTransport::make_pair();
  server.attach(std::move(server_end));
  SessionClient session(*client_end);
  EXPECT_TRUE(session.call(MessageKind::kOther, pattern_bytes(6)).is_ok());
}

TEST(NetServer, ChurnOf1kConnectionsOpensServesAndCloses) {
  std::atomic<std::uint64_t> invocations{0};
  NetServer server(echo_dispatcher(&invocations));
  ServerConfig config;
  config.io_threads = 2;
  config.dispatch_workers = 2;
  ASSERT_TRUE(server.start(config).is_ok());

  constexpr int kThreads = 4;
  constexpr int kConnsPerThread = 250;
  std::atomic<int> failures{0};
  std::vector<std::thread> drivers;
  for (int t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&, t] {
      for (int i = 0; i < kConnsPerThread; ++i) {
        auto [client_end, server_end] = InProcTransport::make_pair();
        server.attach(std::move(server_end));
        SessionClient session(
            *client_end, RetryPolicy{},
            /*seed=*/static_cast<std::uint64_t>(t * kConnsPerThread + i) + 1);
        if (!session.call(MessageKind::kOther, pattern_bytes(8)).is_ok()) {
          failures.fetch_add(1);
        }
        (void)client_end->close();
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(invocations.load(),
            static_cast<std::uint64_t>(kThreads * kConnsPerThread));
  server.stop();
  EXPECT_EQ(server.active_connections(), 0u);
}

TEST(NetServer, StopIsIdempotentAndStopsIdleServers) {
  NetServer server(echo_dispatcher());
  ASSERT_TRUE(server.start(ServerConfig{}).is_ok());
  auto [client_end, server_end] = InProcTransport::make_pair();
  server.attach(std::move(server_end));
  server.stop();
  server.stop();  // second stop is a no-op
}

TEST(NetServer, StartTwiceIsATypedError) {
  NetServer server(echo_dispatcher());
  ASSERT_TRUE(server.start(ServerConfig{}).is_ok());
  EXPECT_FALSE(server.start(ServerConfig{}).is_ok());
}

}  // namespace
}  // namespace smatch
