// Scenario harness tests: Zipf workload generator determinism and
// rank-frequency slope (the property gate ISSUE'd alongside the
// harness), churn-set semantics, the frequency-analysis attack core,
// and small end-to-end scenario runs over the real NetServer stack —
// zero failures, deterministic digests/advantage across runs, and
// retry absorption under injected faults. Also the scripts/ci.sh TSan
// target for the scenario driver.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <unistd.h>

#include "crypto/drbg.hpp"
#include "scenario/adversary.hpp"
#include "scenario/scenarios.hpp"
#include "scenario/workload.hpp"

namespace smatch::scenario {
namespace {

namespace fs = std::filesystem;

constexpr AttrValue kQuantWidth = 8;  // SchemeParams::quant_width default

WorkloadConfig small_config() {
  WorkloadConfig c;
  c.name = "test";
  c.num_users = 64;
  c.num_attributes = 3;
  c.cardinality = 24;
  c.zipf_exponent = 1.1;
  c.churn_fraction = 0.25;
  c.seed = 7;
  return c;
}

// --- Workload generator ---------------------------------------------------

TEST(Workload, DeterministicUnderFixedSeed) {
  const WorkloadConfig config = small_config();
  const Workload a = Workload::generate(config);
  const Workload b = Workload::generate(config);

  ASSERT_EQ(a.num_users(), config.num_users);
  EXPECT_EQ(a.digest(), b.digest());
  for (std::size_t u = 0; u < a.num_users(); ++u) {
    EXPECT_EQ(a.profile(u), b.profile(u));
  }
  EXPECT_EQ(a.churners(), b.churners());
  for (const std::size_t u : a.churners()) {
    EXPECT_EQ(a.churned_profile(u), b.churned_profile(u));
  }
  EXPECT_EQ(a.query_sequence(500), b.query_sequence(500));

  WorkloadConfig reseeded = config;
  reseeded.seed = config.seed + 1;
  EXPECT_NE(Workload::generate(reseeded).digest(), a.digest());
}

TEST(Workload, ZipfRankFrequencySlopeMatchesExponent) {
  // Quota sampling should reproduce the requested rank-frequency law:
  // regressing log(count) on log(rank) over the head of the distribution
  // must recover the exponent within tolerance.
  for (const double s : {0.8, 1.0, 1.3}) {
    WorkloadConfig config;
    config.num_users = 4000;
    config.num_attributes = 1;
    config.cardinality = 16;
    config.zipf_exponent = s;
    config.seed = 11;
    const Workload wl = Workload::generate(config);

    std::vector<double> counts(config.cardinality, 0.0);
    for (std::size_t u = 0; u < wl.num_users(); ++u) {
      counts[wl.profile(u)[0]] += 1.0;
    }
    std::sort(counts.begin(), counts.end(), std::greater<>());

    // Least-squares slope over the ranks with solid mass (the tail's
    // integer rounding is noise).
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    std::size_t n = 0;
    for (std::size_t r = 0; r < counts.size() && counts[r] >= 8.0; ++r) {
      const double x = std::log(static_cast<double>(r + 1));
      const double y = std::log(counts[r]);
      sx += x; sy += y; sxx += x * x; sxy += x * y; ++n;
    }
    ASSERT_GE(n, 6u) << "s=" << s;
    const double nn = static_cast<double>(n);
    const double slope = (nn * sxy - sx * sy) / (nn * sxx - sx * sx);
    EXPECT_NEAR(-slope, s, 0.15) << "s=" << s;
  }
}

TEST(Workload, ChurnSetSizeAndKeyCellChange) {
  const WorkloadConfig config = small_config();
  const Workload wl = Workload::generate(config);

  const auto expected = static_cast<std::size_t>(
      config.churn_fraction * static_cast<double>(config.num_users));
  EXPECT_EQ(wl.churners().size(), expected);
  EXPECT_TRUE(std::is_sorted(wl.churners().begin(), wl.churners().end()));

  for (const std::size_t u : wl.churners()) {
    EXPECT_TRUE(wl.is_churner(u));
    const ProfileVec& before = wl.profile(u);
    const ProfileVec& after = wl.churned_profile(u);
    ASSERT_EQ(before.size(), after.size());
    // The forced cell change on attribute 0 is what makes the re-enrolled
    // user derive a fresh profile key (fuzzy quantization width 8).
    EXPECT_NE(before[0] / kQuantWidth, after[0] / kQuantWidth) << "user " << u;
    EXPECT_EQ(wl.final_profile(u), after);
  }
  for (std::size_t u = 0; u < wl.num_users(); ++u) {
    if (!wl.is_churner(u)) EXPECT_EQ(wl.final_profile(u), wl.profile(u));
  }
}

TEST(Workload, QuerySequenceIsSkewed) {
  WorkloadConfig config = small_config();
  config.num_users = 100;
  config.zipf_exponent = 1.3;
  const Workload wl = Workload::generate(config);

  const std::vector<std::size_t> seq = wl.query_sequence(5000);
  ASSERT_EQ(seq.size(), 5000u);
  std::map<std::size_t, std::size_t> hits;
  for (const std::size_t u : seq) {
    ASSERT_LT(u, wl.num_users());
    ++hits[u];
  }
  std::size_t hottest = 0;
  for (const auto& [u, n] : hits) hottest = std::max(hottest, n);
  // Uniform would give ~50 per user; Zipf(1.3) concentrates far more.
  EXPECT_GT(hottest, 500u);
}

// --- Frequency attack core ------------------------------------------------

TEST(FrequencyAttack, DistinctCiphertextsCarryNoSignal) {
  // Entropy-increase regime: every token unique, so multiplicities are
  // all 1 and the attack can do no better than (roughly) blind guessing.
  const std::vector<double> probs = zipf_probs(8, 1.2);
  Drbg rng(3);
  const std::size_t n = 400;
  std::vector<Bytes> tokens;
  std::vector<AttrValue> truth;
  for (std::size_t i = 0; i < n; ++i) {
    tokens.push_back(rng.bytes(16));  // unique w.h.p.
    truth.push_back(static_cast<AttrValue>(i % probs.size()));
  }
  const auto [acc, blind] = frequency_attack(tokens, truth, probs);
  EXPECT_LT(acc - blind, 0.10);
}

TEST(FrequencyAttack, DeterministicEncryptionLeaksUnderSkew) {
  // No-entropy-increase regime: token = f(value), multiplicities mirror
  // the published Zipf distribution and the attack recovers most users.
  const std::vector<double> probs = zipf_probs(8, 1.2);
  Drbg rng(4);
  std::vector<Bytes> tokens;
  std::vector<AttrValue> truth;
  std::vector<Bytes> codebook;
  for (std::size_t v = 0; v < probs.size(); ++v) codebook.push_back(rng.bytes(16));
  // Quota-exact counts so ranks align with probabilities.
  const std::size_t n = 500;
  for (std::size_t v = 0; v < probs.size(); ++v) {
    const auto count = static_cast<std::size_t>(probs[v] * n);
    for (std::size_t i = 0; i < count; ++i) {
      tokens.push_back(codebook[v]);
      truth.push_back(static_cast<AttrValue>(v));
    }
  }
  const auto [acc, blind] = frequency_attack(tokens, truth, probs);
  EXPECT_GT(acc, 0.95);
  EXPECT_GT(acc - blind, 0.2);
}

// --- End-to-end scenarios -------------------------------------------------

ScenarioSpec tiny_spec(const char* name, std::uint64_t seed) {
  ScenarioSpec s;
  s.name = name;
  s.workload.name = name;
  s.workload.num_users = 24;
  s.workload.num_attributes = 3;
  s.workload.cardinality = 24;
  s.workload.zipf_exponent = 1.1;
  s.workload.seed = seed;
  s.connections = 3;
  s.rsa_bits = 512;  // test-sized OPRF modulus
  s.over_tcp = false;
  return s;
}

TEST(Scenario, EnrollAndQueryCompletesWithZeroFailures) {
  ScenarioSpec spec = tiny_spec("unit_mixed", 21);
  spec.workload.churn_fraction = 0.25;
  spec.queries = 40;

  const StatusOr<ScenarioResult> run = run_scenario(spec);
  ASSERT_TRUE(run.is_ok()) << run.status().to_string();
  EXPECT_EQ(run->failed_requests, 0u);
  EXPECT_EQ(run->enrolled, spec.workload.num_users);
  EXPECT_EQ(run->churned, Workload::generate(spec.workload).churners().size());
  EXPECT_EQ(run->queries_done, spec.queries);
  EXPECT_GT(run->ops, 0u);
  EXPECT_GT(run->adversary.observations, 0u);
  EXPECT_EQ(run->adversary.users, spec.workload.num_users);
  // Entropy increase: the wire-level frequency attack must stay near
  // blind guessing while the raw-OPE strawman is visibly attackable.
  EXPECT_LT(run->adversary.advantage, 0.10);
  EXPECT_GT(run->adversary.raw_ope_advantage, 0.10);
}

TEST(Scenario, RunsAreByteReproducibleUnderFixedSeed) {
  const ScenarioSpec spec = [] {
    ScenarioSpec s = tiny_spec("unit_repro", 22);
    s.workload.churn_fraction = 0.2;
    s.queries = 20;
    return s;
  }();
  const StatusOr<ScenarioResult> a = run_scenario(spec);
  const StatusOr<ScenarioResult> b = run_scenario(spec);
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  ASSERT_TRUE(b.is_ok()) << b.status().to_string();

  // Wall-clock moves; every protocol-determined number must not.
  EXPECT_EQ(a->workload_digest, b->workload_digest);
  EXPECT_EQ(a->ops, b->ops);
  EXPECT_EQ(a->failed_requests, b->failed_requests);
  EXPECT_EQ(a->enrolled, b->enrolled);
  EXPECT_EQ(a->churned, b->churned);
  EXPECT_EQ(a->queries_done, b->queries_done);
  EXPECT_EQ(a->entries_verified, b->entries_verified);
  EXPECT_EQ(a->adversary.advantage, b->adversary.advantage);
  EXPECT_EQ(a->adversary.raw_ope_advantage, b->adversary.raw_ope_advantage);
  EXPECT_EQ(a->adversary.groups, b->adversary.groups);

  ScenarioSpec reseeded = spec;
  reseeded.workload.seed = 23;
  const StatusOr<ScenarioResult> c = run_scenario(reseeded);
  ASSERT_TRUE(c.is_ok());
  EXPECT_NE(c->workload_digest, a->workload_digest);
}

TEST(Scenario, FaultyTransportAbsorbedByRetries) {
  ScenarioSpec spec = tiny_spec("unit_lossy", 24);
  spec.workload.num_users = 16;
  spec.queries = 16;
  spec.connections = 2;
  spec.over_tcp = true;  // the real loopback stack, faults on the client side
  spec.faulty = true;
  spec.faults.drop = 0.2;
  spec.faults.seed = 99;
  spec.policy.max_attempts = 10;
  spec.policy.attempt_timeout = std::chrono::milliseconds{250};
  spec.policy.initial_backoff = std::chrono::milliseconds{1};
  spec.policy.max_backoff = std::chrono::milliseconds{10};

  const StatusOr<ScenarioResult> run = run_scenario(spec);
  ASSERT_TRUE(run.is_ok()) << run.status().to_string();
  EXPECT_EQ(run->failed_requests, 0u);
  EXPECT_EQ(run->enrolled, spec.workload.num_users);
  EXPECT_GT(run->retries, 0u);  // the injected loss was really there
}

TEST(Scenario, EvictingStoreScenarioPagesAndRecovers) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("smatch_store_scenario_test_" + std::to_string(::getpid()));
  struct Guard {
    const fs::path& d;
    ~Guard() {
      std::error_code ec;
      fs::remove_all(d, ec);
    }
  } guard{dir};

  ScenarioSpec spec = tiny_spec("unit_evict", 25);
  spec.queries = 48;
  spec.store_budget_bytes = 256;  // tiny: forces paging mid-workload
  spec.store_dir = (dir / "unit_evict").string();

  const StatusOr<ScenarioResult> run = run_scenario(spec);
  ASSERT_TRUE(run.is_ok()) << run.status().to_string();
  EXPECT_EQ(run->failed_requests, 0u);
  EXPECT_GT(run->store_evictions, 0u);
  EXPECT_GT(run->store_page_ins, 0u);
  EXPECT_EQ(run->queries_done, spec.queries);
}

TEST(Scenario, StandardScenariosCoverTheSixNamedWorkloads) {
  const std::vector<ScenarioSpec> specs = standard_scenarios(48, 1, "/tmp/x");
  ASSERT_EQ(specs.size(), 6u);
  std::set<std::string> names;
  for (const ScenarioSpec& s : specs) names.insert(s.name);
  for (const char* expected :
       {"enroll_storm", "churn_reenroll", "hot_query_skew", "lossy_clients",
        "evicting_store", "checkpoint_under_load"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
  for (const ScenarioSpec& s : specs) {
    if (s.name == "lossy_clients") EXPECT_TRUE(s.faulty);
    if (s.name == "evicting_store") EXPECT_GT(s.store_budget_bytes, 0u);
    if (s.name == "checkpoint_under_load") {
      EXPECT_TRUE(s.store_maintenance);
      EXPECT_FALSE(s.store_dir.empty());
    }
  }
}

}  // namespace
}  // namespace smatch::scenario
