// MatchServer and wire-message tests: grouping, Algorithm Match (EXTRA /
// SORT / FIND), re-upload semantics, serialization round trips (versioned
// header), the Status-based error API, and the tamper helpers.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "core/server.hpp"
#include "crypto/drbg.hpp"

namespace smatch {
namespace {

UploadMessage make_upload(UserId id, const Bytes& index, std::uint64_t chain) {
  UploadMessage up;
  up.user_id = id;
  up.key_index = index;
  up.chain_cipher = BigInt{chain};
  up.chain_cipher_bits = 64;
  up.auth_token = to_bytes("token-" + std::to_string(id));
  return up;
}

TEST(Messages, UploadRoundTrip) {
  const UploadMessage up = make_upload(7, Bytes(32, 0xab), 123456789);
  const StatusOr<UploadMessage> parsed = UploadMessage::parse(up.serialize());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const UploadMessage& back = *parsed;
  EXPECT_EQ(back.user_id, up.user_id);
  EXPECT_EQ(back.key_index, up.key_index);
  EXPECT_EQ(back.chain_cipher, up.chain_cipher);
  EXPECT_EQ(back.chain_cipher_bits, up.chain_cipher_bits);
  EXPECT_EQ(back.auth_token, up.auth_token);
}

TEST(Messages, UploadSizeMatchesPaperFormula) {
  // Header + l_id + l_h + l_ciph + chain bits: the Eq. (9)-style
  // accounting plus the 3-byte magic/version frame.
  UploadMessage up = make_upload(7, Bytes(32, 1), 1);
  up.chain_cipher_bits = 384;
  const std::size_t expected = kWireHeaderBytes + 4 /*id*/ + 4 + 32 /*h(K)*/ +
                               4 + 384 / 8 /*chain*/ + 4 + up.auth_token.size();
  EXPECT_EQ(up.serialize().size(), expected);
}

TEST(Messages, SerializedHeaderIsMagicThenVersion) {
  const Bytes wire = QueryRequest{1, 2, 3}.serialize();
  ASSERT_GE(wire.size(), kWireHeaderBytes);
  EXPECT_EQ(wire[0], 0x53);  // 'S'
  EXPECT_EQ(wire[1], 0x4d);  // 'M'
  EXPECT_EQ(wire[2], kWireVersion);
}

TEST(Messages, QueryAndResultRoundTrip) {
  const QueryRequest q{42, 1699999999, 7};
  const QueryRequest qb = QueryRequest::parse(q.serialize()).value();
  EXPECT_EQ(qb.query_id, 42u);
  EXPECT_EQ(qb.timestamp, 1699999999u);
  EXPECT_EQ(qb.user_id, 7u);

  QueryResult r;
  r.query_id = 42;
  r.timestamp = 1699999999;
  r.entries = {{1, to_bytes("t1")}, {2, to_bytes("t2")}};
  const QueryResult rb = QueryResult::parse(r.serialize()).value();
  ASSERT_EQ(rb.entries.size(), 2u);
  EXPECT_EQ(rb.entries[0].user_id, 1u);
  EXPECT_EQ(rb.entries[1].auth_token, to_bytes("t2"));
}

TEST(Messages, ParseRejectsGarbage) {
  EXPECT_EQ(UploadMessage::parse(Bytes{1, 2, 3}).code(), StatusCode::kMalformedMessage);
  EXPECT_EQ(QueryRequest::parse(Bytes{}).code(), StatusCode::kMalformedMessage);
  Bytes valid = QueryRequest{1, 2, 3}.serialize();
  valid.push_back(0);  // trailing garbage
  EXPECT_EQ(QueryRequest::parse(valid).code(), StatusCode::kMalformedMessage);
}

TEST(Messages, ParseRejectsWrongMagicAndUnknownVersion) {
  Bytes wire = QueryRequest{1, 2, 3}.serialize();
  Bytes bad_magic = wire;
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(QueryRequest::parse(bad_magic).code(), StatusCode::kMalformedMessage);

  Bytes future_version = wire;
  future_version[2] = kWireVersion + 1;
  const auto parsed = QueryRequest::parse(future_version);
  EXPECT_EQ(parsed.code(), StatusCode::kUnsupportedVersion);
  // All three message types enforce the header.
  Bytes up_wire = make_upload(1, Bytes(32, 1), 5).serialize();
  up_wire[2] = 99;
  EXPECT_EQ(UploadMessage::parse(up_wire).code(), StatusCode::kUnsupportedVersion);
}

TEST(MatchServer, GroupsByKeyIndex) {
  MatchServer server;
  const Bytes g1(32, 1), g2(32, 2);
  EXPECT_TRUE(server.ingest(make_upload(1, g1, 10)).is_ok());
  EXPECT_TRUE(server.ingest(make_upload(2, g1, 20)).is_ok());
  EXPECT_TRUE(server.ingest(make_upload(3, g2, 30)).is_ok());
  EXPECT_EQ(server.num_users(), 3u);
  EXPECT_EQ(server.num_groups(), 2u);
  EXPECT_EQ(server.group_size_of(1), 2u);
  EXPECT_EQ(server.group_size_of(3), 1u);
  EXPECT_EQ(server.group_size_of(99), 0u);
}

TEST(MatchServer, IngestRejectsMissingKeyIndex) {
  MatchServer server;
  UploadMessage up = make_upload(1, Bytes{}, 10);
  const Status s = server.ingest(up);
  EXPECT_EQ(s.code(), StatusCode::kMalformedMessage);
  EXPECT_EQ(server.num_users(), 0u);
}

TEST(MatchServer, MatchReturnsOrderNearestNeighbours) {
  MatchServer server;
  const Bytes g(32, 1);
  // Chain order: 10 < 20 < 30 < 40 < 50.
  for (UserId id = 1; id <= 5; ++id) ASSERT_TRUE(server.ingest(make_upload(id, g, id * 10)).is_ok());
  const QueryResult r = server.match({1, 0, 3}, 2).value();  // querier has chain 30
  ASSERT_EQ(r.entries.size(), 2u);
  std::vector<UserId> ids = {r.entries[0].user_id, r.entries[1].user_id};
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<UserId>{2, 4}));  // chains 20 and 40
}

TEST(MatchServer, MatchWidensWhenOneSideRunsOut) {
  MatchServer server;
  const Bytes g(32, 1);
  for (UserId id = 1; id <= 5; ++id) ASSERT_TRUE(server.ingest(make_upload(id, g, id * 10)).is_ok());
  // Querier is the smallest element: all k must come from above.
  const QueryResult r = server.match({1, 0, 1}, 3).value();
  ASSERT_EQ(r.entries.size(), 3u);
  std::vector<UserId> ids;
  for (const auto& e : r.entries) ids.push_back(e.user_id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<UserId>{2, 3, 4}));
}

TEST(MatchServer, MatchNeverReturnsQuerierOrForeignGroups) {
  MatchServer server;
  const Bytes g1(32, 1), g2(32, 2);
  for (UserId id = 1; id <= 4; ++id) ASSERT_TRUE(server.ingest(make_upload(id, g1, id)).is_ok());
  for (UserId id = 10; id <= 14; ++id) ASSERT_TRUE(server.ingest(make_upload(id, g2, id)).is_ok());
  const QueryResult r = server.match({5, 0, 2}, 10).value();
  EXPECT_EQ(r.entries.size(), 3u);  // only 3 other members in g1
  for (const auto& e : r.entries) {
    EXPECT_NE(e.user_id, 2u);
    EXPECT_LT(e.user_id, 10u);  // never from g2
  }
}

TEST(MatchServer, SmallGroupReturnsFewerThanK) {
  MatchServer server;
  const Bytes g(32, 1);
  ASSERT_TRUE(server.ingest(make_upload(1, g, 10)).is_ok());
  const QueryResult r = server.match({1, 0, 1}, 5).value();
  EXPECT_TRUE(r.entries.empty());
}

TEST(MatchServer, UnknownQuerierReturnsStatus) {
  MatchServer server;
  const auto r = server.match({1, 0, 99}, 5);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), StatusCode::kUnknownUser);
}

TEST(MatchServer, ReUploadReplacesAndCanMoveGroups) {
  MatchServer server;
  const Bytes g1(32, 1), g2(32, 2);
  ASSERT_TRUE(server.ingest(make_upload(1, g1, 10)).is_ok());
  ASSERT_TRUE(server.ingest(make_upload(2, g1, 20)).is_ok());
  EXPECT_EQ(server.group_size_of(1), 2u);
  // User 1 re-uploads with a new profile key (profile changed).
  ASSERT_TRUE(server.ingest(make_upload(1, g2, 99)).is_ok());
  EXPECT_EQ(server.num_users(), 2u);
  EXPECT_EQ(server.group_size_of(1), 1u);
  EXPECT_EQ(server.group_size_of(2), 1u);
}

TEST(MatchServer, QueryEchoesIdAndTimestamp) {
  MatchServer server;
  const Bytes g(32, 1);
  ASSERT_TRUE(server.ingest(make_upload(1, g, 10)).is_ok());
  ASSERT_TRUE(server.ingest(make_upload(2, g, 20)).is_ok());
  const QueryResult r = server.match({77, 123456, 1}, 1).value();
  EXPECT_EQ(r.query_id, 77u);
  EXPECT_EQ(r.timestamp, 123456u);
}

TEST(MatchServer, ComparisonCounterAdvances) {
  MatchServer server;
  const Bytes g(32, 1);
  for (UserId id = 1; id <= 50; ++id) ASSERT_TRUE(server.ingest(make_upload(id, g, id * 3)).is_ok());
  const auto before = server.comparisons();
  (void)server.match({1, 0, 25}, 5).value();
  EXPECT_GT(server.comparisons(), before);
}

TEST(MatchServer, MetricsSnapshotTracksTraffic) {
  MatchServer server(ServerOptions{.num_shards = 4});
  EXPECT_EQ(server.num_shards(), 4u);
  Drbg rng(7);
  // Spread 40 users over 10 random key groups.
  std::vector<Bytes> indexes;
  for (int g = 0; g < 10; ++g) indexes.push_back(rng.bytes(32));
  for (UserId id = 1; id <= 40; ++id) {
    ASSERT_TRUE(server.ingest(make_upload(id, indexes[id % 10], id * 7)).is_ok());
  }
  for (UserId id = 1; id <= 40; ++id) (void)server.match({1, 0, id}, 3).value();

  const ServerMetrics m = server.metrics();
  EXPECT_EQ(m.shards.size(), 4u);
  EXPECT_EQ(m.ingests, 40u);
  EXPECT_EQ(m.matches, 40u);
  EXPECT_GT(m.comparisons, 0u);
  EXPECT_EQ(m.comparisons, server.comparisons());
  std::uint64_t users = 0, groups = 0;
  for (const auto& s : m.shards) {
    users += s.users;
    groups += s.groups;
  }
  EXPECT_EQ(users, 40u);
  EXPECT_EQ(groups, server.num_groups());
  // Histogram over all shards: 10 groups of 4 users each.
  ASSERT_EQ(m.group_size_histogram.size(), 1u);
  EXPECT_EQ(m.group_size_histogram.at(4), 10u);
}

TEST(MatchServer, MaxDistanceMatchingReturnsRankNeighbourhood) {
  MatchServer server;
  const Bytes g(32, 1);
  for (UserId id = 1; id <= 9; ++id) ASSERT_TRUE(server.ingest(make_upload(id, g, id * 10)).is_ok());
  // Querier 5 (middle), max order distance 2 -> users 3,4,6,7.
  const QueryResult r = server.match_within({1, 0, 5}, 2).value();
  ASSERT_EQ(r.entries.size(), 4u);
  // Ordered by increasing rank distance: 4,6 then 3,7.
  EXPECT_EQ(r.entries[0].user_id, 4u);
  EXPECT_EQ(r.entries[1].user_id, 6u);
  EXPECT_EQ(r.entries[2].user_id, 3u);
  EXPECT_EQ(r.entries[3].user_id, 7u);
}

TEST(MatchServer, MaxDistanceMatchingClampsAtGroupEdges) {
  MatchServer server;
  const Bytes g(32, 1);
  for (UserId id = 1; id <= 4; ++id) ASSERT_TRUE(server.ingest(make_upload(id, g, id * 10)).is_ok());
  // Querier 1 (smallest): only higher-ranked neighbours exist.
  const QueryResult r = server.match_within({1, 0, 1}, 10).value();
  ASSERT_EQ(r.entries.size(), 3u);
  EXPECT_EQ(r.entries[0].user_id, 2u);
  // Zero distance returns nothing; unknown querier is a typed error.
  EXPECT_TRUE(server.match_within({1, 0, 1}, 0).value().entries.empty());
  EXPECT_EQ(server.match_within({1, 0, 99}, 1).code(), StatusCode::kUnknownUser);
}

TEST(Status, CodesRoundTripToStrings) {
  EXPECT_EQ(to_string(StatusCode::kOk), "OK");
  EXPECT_EQ(to_string(StatusCode::kUnknownUser), "UNKNOWN_USER");
  const Status s(StatusCode::kStaleTimestamp, "t=5");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.to_string(), "STALE_TIMESTAMP: t=5");
  EXPECT_TRUE(Status::ok().is_ok());
}

TEST(Status, StatusOrValueThrowsOnlyOnError) {
  StatusOr<int> ok(42);
  EXPECT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.value_or(7), 42);
  StatusOr<int> err(StatusCode::kEmptyGroup, "gone");
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.value_or(7), 7);
  EXPECT_THROW((void)err.value(), Error);
}

TEST(TamperResult, ForgeTokenChangesTokens) {
  Drbg rng(1);
  QueryResult honest;
  honest.entries = {{1, Bytes(16, 0xaa)}, {2, Bytes(16, 0xbb)}};
  const QueryResult fake = tamper_result(honest, ServerAttack::kForgeToken, rng);
  ASSERT_EQ(fake.entries.size(), 2u);
  EXPECT_NE(fake.entries[0].auth_token, honest.entries[0].auth_token);
  EXPECT_EQ(fake.entries[0].user_id, honest.entries[0].user_id);
}

TEST(TamperResult, SwapIdentityChangesIds) {
  Drbg rng(2);
  QueryResult honest;
  honest.entries = {{1, Bytes(16, 0xaa)}};
  const QueryResult fake = tamper_result(honest, ServerAttack::kSwapIdentity, rng);
  EXPECT_NE(fake.entries[0].user_id, 1u);
  EXPECT_EQ(fake.entries[0].auth_token, honest.entries[0].auth_token);
}

TEST(TamperResult, ForeignUserSubstitutes) {
  Drbg rng(3);
  QueryResult honest;
  honest.entries = {{1, Bytes(16, 0xaa)}};
  const std::vector<MatchEntry> foreign = {{9, Bytes(16, 0xcc)}};
  const QueryResult fake = tamper_result(honest, ServerAttack::kForeignUser, rng, foreign);
  ASSERT_EQ(fake.entries.size(), 1u);
  EXPECT_EQ(fake.entries[0].user_id, 9u);
}

}  // namespace
}  // namespace smatch
