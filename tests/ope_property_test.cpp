// Seeded property tests for the cached OPE: random keys and random
// plaintext/ciphertext widths (including the degenerate equal-width
// setting), order preservation, round trips, rejection paths, and the
// heterogeneous-width chain composition the client pipeline relies on.
// Every trial also runs as a cached-vs-uncached differential: the node
// cache memoizes deterministic values, so it must never change a single
// ciphertext bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "core/chain.hpp"
#include "crypto/drbg.hpp"
#include "ope/ope.hpp"

namespace smatch {
namespace {

struct Widths {
  std::size_t pt;
  std::size_t ct;
};

// Random plaintext width in [1, 96] with ciphertext slack in [1, 64].
Widths random_widths(Drbg& rng) {
  const std::size_t pt = 1 + rng.below(96);
  return {pt, pt + 1 + rng.below(64)};
}

TEST(OpeRandomized, OrderRoundTripAndCacheAgreementAcrossRandomWidths) {
  Drbg rng(20250806);
  for (int trial = 0; trial < 20; ++trial) {
    const auto [pt, ct] = random_widths(rng);
    const Bytes key = rng.bytes(32);
    const Ope cached(key, pt, ct);
    const Ope uncached(key, pt, ct, /*cache_nodes=*/0);
    const BigInt bound = BigInt{1} << pt;

    BigInt prev_m{-1}, prev_c{-1};
    for (int iter = 0; iter < 12; ++iter) {
      const BigInt m = BigInt::random_below(rng, bound);
      const BigInt c = cached.encrypt(m);
      // The cache must be invisible in the ciphertexts.
      EXPECT_EQ(c, uncached.encrypt(m)) << "pt=" << pt << " ct=" << ct;
      // Definition 1's publicly computable Test on successive draws.
      if (prev_m >= BigInt{0}) {
        EXPECT_EQ(m >= prev_m, c >= prev_c);
        EXPECT_EQ(m == prev_m, c == prev_c);
      }
      EXPECT_LE(c.bit_length(), ct);
      EXPECT_EQ(cached.decrypt(c), m);
      EXPECT_EQ(uncached.decrypt(c), m);
      prev_m = m;
      prev_c = c;
    }
  }
}

TEST(OpeRandomized, EqualWidthsDegenerateToIdentityUnderRandomKeys) {
  // The paper's N = M setting: the only order-preserving injection of a
  // space onto itself is the identity, whatever the key.
  Drbg rng(42001);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t bits = 1 + rng.below(48);
    const Ope ope(rng.bytes(32), bits, bits);
    const BigInt bound = BigInt{1} << bits;
    for (int iter = 0; iter < 6; ++iter) {
      const BigInt m = BigInt::random_below(rng, bound);
      EXPECT_EQ(ope.encrypt(m), m);
    }
    EXPECT_EQ(ope.encrypt(bound - BigInt{1}), bound - BigInt{1});
  }
}

TEST(OpeRandomized, RejectionPathsAcrossRandomWidths) {
  Drbg rng(515151);
  for (int trial = 0; trial < 10; ++trial) {
    const auto [pt, ct] = random_widths(rng);
    const Ope ope(rng.bytes(32), pt, ct);
    const BigInt pt_bound = BigInt{1} << pt;
    const BigInt ct_bound = BigInt{1} << ct;

    // Out-of-domain plaintexts are always rejected.
    EXPECT_THROW((void)ope.encrypt(pt_bound), CryptoError);
    EXPECT_THROW((void)ope.encrypt(pt_bound + BigInt::random_below(rng, pt_bound)),
                 CryptoError);
    EXPECT_THROW((void)ope.encrypt(BigInt{-1}), CryptoError);

    // A random range point either decrypts to a plaintext that re-encrypts
    // to exactly it, or it is not a ciphertext and must be rejected.
    for (int iter = 0; iter < 8; ++iter) {
      const BigInt c = BigInt::random_below(rng, ct_bound);
      try {
        const BigInt m = ope.decrypt(c);
        EXPECT_EQ(ope.encrypt(m), c);
      } catch (const CryptoError&) {
        // Expected for non-image points.
      }
    }
    // Beyond the range entirely: never a valid ciphertext.
    EXPECT_THROW((void)ope.decrypt(ct_bound), CryptoError);
  }
}

TEST(OpeRandomized, AdaptiveWidthChainsRoundTripThroughOpe) {
  // The client pipeline composition: heterogeneous per-attribute widths
  // (the Section X adaptive extension) are chained in a keyed order, the
  // chain is OPE-encrypted, and decrypt + disassemble must restore every
  // mapped value. Chain order must survive encryption too.
  Drbg rng(909090);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t d = 3 + rng.below(4);
    std::vector<std::size_t> widths;
    std::size_t total = 0;
    for (std::size_t i = 0; i < d; ++i) {
      widths.push_back(2 + rng.below(24));
      total += widths.back();
    }
    const AttributeChain chain(widths);
    ASSERT_EQ(chain.chain_bits(), total);

    const Bytes profile_key = rng.bytes(32);
    const auto perm = chain.permutation(profile_key);
    const Ope ope(rng.bytes(32), total, total + 64);

    std::vector<BigInt> prev_mapped;
    BigInt prev_chain{-1}, prev_cipher{-1};
    for (int iter = 0; iter < 6; ++iter) {
      std::vector<BigInt> mapped;
      for (std::size_t i = 0; i < d; ++i) {
        mapped.push_back(BigInt::random_below(rng, BigInt{1} << widths[i]));
      }
      const BigInt assembled = chain.assemble(mapped, perm);
      // The precomputed-permutation overload is the keyed one, hoisted.
      EXPECT_EQ(assembled, chain.assemble(mapped, BytesView(profile_key)));

      const BigInt cipher = ope.encrypt(assembled);
      EXPECT_EQ(ope.decrypt(cipher), assembled);
      EXPECT_EQ(chain.disassemble(assembled, perm), mapped);
      if (iter > 0) {
        EXPECT_EQ(assembled >= prev_chain, cipher >= prev_cipher);
      }
      prev_chain = assembled;
      prev_cipher = cipher;
      prev_mapped = mapped;
    }
  }
}

TEST(OpeRandomized, TinyCacheEvictsYetStaysCorrect) {
  // A cache far smaller than one walk forces evictions on every
  // encryption; correctness must not depend on residency.
  Drbg rng(333);
  const Bytes key = rng.bytes(32);
  const Ope tiny(key, 48, 96, /*cache_nodes=*/8);
  const Ope uncached(key, 48, 96, /*cache_nodes=*/0);
  const BigInt bound = BigInt{1} << 48;
  for (int iter = 0; iter < 40; ++iter) {
    const BigInt m = BigInt::random_below(rng, bound);
    const BigInt c = tiny.encrypt(m);
    EXPECT_EQ(c, uncached.encrypt(m));
    EXPECT_EQ(tiny.decrypt(c), m);
  }
  const OpeCacheStats stats = tiny.cache_stats();
  EXPECT_EQ(stats.capacity, 8u);
  EXPECT_LE(stats.entries, stats.capacity);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.misses, 0u);
}

TEST(OpeRandomized, CacheStatsCountHitsAndUncachedStaysZero) {
  Drbg rng(777);
  const Bytes key = rng.bytes(32);
  const Ope cached(key, 64, 128);
  const Ope uncached(key, 64, 128, /*cache_nodes=*/0);

  const BigInt m = BigInt::random_below(rng, BigInt{1} << 64);
  (void)cached.encrypt(m);
  const OpeCacheStats first = cached.cache_stats();
  EXPECT_GT(first.misses, 0u);

  // The second walk of the same plaintext replays the cached path.
  (void)cached.encrypt(m);
  const OpeCacheStats second = cached.cache_stats();
  EXPECT_GE(second.hits, first.misses);
  EXPECT_EQ(second.misses, first.misses);

  (void)uncached.encrypt(m);
  const OpeCacheStats none = uncached.cache_stats();
  EXPECT_EQ(none.hits, 0u);
  EXPECT_EQ(none.misses, 0u);
  EXPECT_EQ(none.capacity, 0u);
  EXPECT_EQ(none.entries, 0u);
}

}  // namespace
}  // namespace smatch
