// Unit and property tests for the arbitrary-precision integer substrate.
#include <gtest/gtest.h>

#include "bigint/bigint.hpp"
#include "bigint/prime.hpp"
#include "common/error.hpp"
#include "crypto/drbg.hpp"

namespace smatch {
namespace {

TEST(BigIntBasic, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_negative());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_decimal(), "0");
}

TEST(BigIntBasic, FromUnsigned) {
  BigInt v{std::uint64_t{0xffffffffffffffffULL}};
  EXPECT_EQ(v.to_decimal(), "18446744073709551615");
  EXPECT_EQ(v.bit_length(), 64u);
}

TEST(BigIntBasic, FromNegativeSigned) {
  BigInt v{std::int64_t{-42}};
  EXPECT_TRUE(v.is_negative());
  EXPECT_EQ(v.to_decimal(), "-42");
  EXPECT_EQ((-v).to_decimal(), "42");
}

TEST(BigIntBasic, Int64MinDoesNotOverflow) {
  BigInt v{std::int64_t{INT64_MIN}};
  EXPECT_EQ(v.to_decimal(), "-9223372036854775808");
}

TEST(BigIntBasic, DecimalRoundTrip) {
  const std::string s = "123456789012345678901234567890123456789012345678901234567890";
  EXPECT_EQ(BigInt::from_decimal(s).to_decimal(), s);
  EXPECT_EQ(BigInt::from_decimal("-" + s).to_decimal(), "-" + s);
}

TEST(BigIntBasic, HexRoundTrip) {
  const std::string s = "deadbeefcafebabe0123456789abcdef00ff";
  EXPECT_EQ(BigInt::from_hex_string(s).to_hex_string(), s);
  EXPECT_EQ(BigInt::from_hex_string("0x10").to_decimal(), "16");
}

TEST(BigIntBasic, BytesRoundTrip) {
  const Bytes b = {0x01, 0x02, 0x03, 0xff};
  EXPECT_EQ(BigInt::from_bytes(b).to_bytes(), b);
  EXPECT_EQ(BigInt{}.to_bytes(), Bytes{});
}

TEST(BigIntBasic, PaddedBytes) {
  BigInt v{0x1234u};
  const Bytes padded = v.to_bytes_padded(4);
  EXPECT_EQ(padded, (Bytes{0x00, 0x00, 0x12, 0x34}));
  EXPECT_THROW((void)v.to_bytes_padded(1), CryptoError);
}

TEST(BigIntBasic, InvalidParsesThrow) {
  EXPECT_THROW((void)BigInt::from_decimal(""), SerdeError);
  EXPECT_THROW((void)BigInt::from_decimal("12x"), SerdeError);
  EXPECT_THROW((void)BigInt::from_hex_string("zz"), SerdeError);
}

TEST(BigIntArith, AdditionCarriesAcrossLimbs) {
  BigInt a = BigInt::from_hex_string("ffffffffffffffffffffffffffffffff");
  EXPECT_EQ((a + BigInt{1}).to_hex_string(), "100000000000000000000000000000000");
}

TEST(BigIntArith, SubtractionBorrow) {
  BigInt a = BigInt::from_hex_string("100000000000000000000000000000000");
  EXPECT_EQ((a - BigInt{1}).to_hex_string(), "ffffffffffffffffffffffffffffffff");
}

TEST(BigIntArith, SignedAddSub) {
  EXPECT_EQ((BigInt{5} + BigInt{-7}).to_decimal(), "-2");
  EXPECT_EQ((BigInt{-5} + BigInt{7}).to_decimal(), "2");
  EXPECT_EQ((BigInt{-5} - BigInt{-7}).to_decimal(), "2");
  EXPECT_EQ((BigInt{5} - BigInt{5}).to_decimal(), "0");
}

TEST(BigIntArith, MultiplyKnown) {
  BigInt a = BigInt::from_decimal("123456789123456789");
  BigInt b = BigInt::from_decimal("987654321987654321");
  EXPECT_EQ((a * b).to_decimal(), "121932631356500531347203169112635269");
}

TEST(BigIntArith, MultiplySigns) {
  EXPECT_EQ((BigInt{-3} * BigInt{4}).to_decimal(), "-12");
  EXPECT_EQ((BigInt{-3} * BigInt{-4}).to_decimal(), "12");
  EXPECT_EQ((BigInt{-3} * BigInt{0}).to_decimal(), "0");
}

TEST(BigIntArith, DivModTruncatedSemantics) {
  // Truncated toward zero; remainder carries the dividend's sign.
  EXPECT_EQ((BigInt{7} / BigInt{2}).to_decimal(), "3");
  EXPECT_EQ((BigInt{-7} / BigInt{2}).to_decimal(), "-3");
  EXPECT_EQ((BigInt{7} % BigInt{-2}).to_decimal(), "1");
  EXPECT_EQ((BigInt{-7} % BigInt{2}).to_decimal(), "-1");
}

TEST(BigIntArith, DivisionByZeroThrows) {
  EXPECT_THROW((void)(BigInt{1} / BigInt{0}), CryptoError);
  EXPECT_THROW((void)(BigInt{1} % BigInt{0}), CryptoError);
}

TEST(BigIntArith, ModAlwaysNonNegative) {
  EXPECT_EQ(BigInt{-7}.mod(BigInt{3}).to_decimal(), "2");
  EXPECT_EQ(BigInt{7}.mod(BigInt{3}).to_decimal(), "1");
}

TEST(BigIntArith, Shifts) {
  BigInt a{1};
  EXPECT_EQ((a << 200).bit_length(), 201u);
  EXPECT_EQ(((a << 200) >> 200).to_decimal(), "1");
  EXPECT_EQ((BigInt{0xff} >> 4).to_decimal(), "15");
  EXPECT_EQ((BigInt{0xff} >> 9).to_decimal(), "0");
}

TEST(BigIntArith, BitAccess) {
  BigInt v = BigInt::from_hex_string("8000000000000001");
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(1));
  EXPECT_FALSE(v.bit(64));
}

// Property sweep: division identity a == q*b + r with |r| < |b| across
// many random operand widths.
class BigIntDivisionProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BigIntDivisionProperty, Identity) {
  const auto [a_bits, b_bits] = GetParam();
  Drbg rng(static_cast<std::uint64_t>(a_bits * 1000 + b_bits));
  for (int iter = 0; iter < 50; ++iter) {
    BigInt a = BigInt::random_bits(rng, static_cast<std::size_t>(a_bits));
    BigInt b = BigInt::random_bits(rng, static_cast<std::size_t>(b_bits));
    auto [q, r] = BigInt::div_mod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r.abs() < b.abs());
    EXPECT_FALSE(r.is_negative());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, BigIntDivisionProperty,
    ::testing::Values(std::pair{64, 64}, std::pair{128, 64}, std::pair{256, 128},
                      std::pair{512, 256}, std::pair{1024, 512}, std::pair{2048, 1024},
                      std::pair{100, 65}, std::pair{130, 129}, std::pair{4096, 2048}));

TEST(BigIntArith, MulMatchesSquareOfSum) {
  // (a+b)^2 == a^2 + 2ab + b^2 exercises add/mul interplay at many widths.
  Drbg rng(42);
  for (std::size_t bits : {16u, 64u, 200u, 1000u, 3000u}) {
    BigInt a = BigInt::random_bits(rng, bits);
    BigInt b = BigInt::random_bits(rng, bits);
    BigInt lhs = (a + b) * (a + b);
    BigInt rhs = a * a + (a * b << 1) + b * b;
    EXPECT_EQ(lhs, rhs) << "bits=" << bits;
  }
}

TEST(BigIntModular, PowModKnown) {
  // 2^10 mod 1000 = 24
  EXPECT_EQ(BigInt{2}.pow_mod(BigInt{10}, BigInt{1000}).to_decimal(), "24");
  // Fermat: a^(p-1) = 1 mod p for prime p.
  const BigInt p = BigInt::from_decimal("1000000007");
  EXPECT_EQ(BigInt{12345}.pow_mod(p - BigInt{1}, p).to_decimal(), "1");
}

TEST(BigIntModular, PowModEdgeCases) {
  EXPECT_EQ(BigInt{5}.pow_mod(BigInt{0}, BigInt{7}).to_decimal(), "1");
  EXPECT_EQ(BigInt{5}.pow_mod(BigInt{3}, BigInt{1}).to_decimal(), "0");
  EXPECT_THROW((void)BigInt{5}.pow_mod(BigInt{-1}, BigInt{7}), CryptoError);
}

TEST(BigIntModular, PowModMatchesIteratedMultiplication) {
  Drbg rng(7);
  const BigInt m = BigInt::from_decimal("1000003");
  for (int iter = 0; iter < 20; ++iter) {
    const BigInt base = BigInt::random_below(rng, m);
    const std::uint64_t e = rng.below(200);
    BigInt expected{1};
    for (std::uint64_t i = 0; i < e; ++i) expected = BigInt::mul_mod(expected, base, m);
    EXPECT_EQ(base.pow_mod(BigInt{e}, m), expected);
  }
}

TEST(BigIntModular, MontgomeryMatchesGenericPath) {
  // Odd moduli of >= 8 limbs take the Montgomery path; even moduli the
  // generic one. Cross-check them through the identity
  // a^e mod (m*2) in {a^e mod m ...}: compute x = a^e mod 2m (generic,
  // even modulus) and verify x mod m == a^e mod m (Montgomery).
  Drbg rng(43);
  for (int iter = 0; iter < 10; ++iter) {
    BigInt m = BigInt::random_bits(rng, 520);
    if (m.is_even()) m += BigInt{1};
    const BigInt a = BigInt::random_below(rng, m);
    const BigInt e = BigInt::random_bits(rng, 130);
    const BigInt via_mont = a.pow_mod(e, m);        // odd, 9 limbs: Montgomery
    const BigInt via_generic = a.pow_mod(e, m << 1) // even: generic path
                                   .mod(m);
    EXPECT_EQ(via_mont, via_generic) << "iter " << iter;
  }
}

TEST(BigIntModular, MontgomeryExponentLaws) {
  // a^(e1+e2) == a^e1 * a^e2 and (a^e1)^e2 == a^(e1*e2) on the
  // Montgomery path.
  Drbg rng(44);
  const BigInt m = BigInt::random_bits(rng, 1024);
  const BigInt m_odd = m.is_odd() ? m : m + BigInt{1};
  for (int iter = 0; iter < 5; ++iter) {
    const BigInt a = BigInt::random_below(rng, m_odd);
    const BigInt e1 = BigInt::random_bits(rng, 100);
    const BigInt e2 = BigInt::random_bits(rng, 100);
    EXPECT_EQ(a.pow_mod(e1 + e2, m_odd),
              BigInt::mul_mod(a.pow_mod(e1, m_odd), a.pow_mod(e2, m_odd), m_odd));
    EXPECT_EQ(a.pow_mod(e1, m_odd).pow_mod(e2, m_odd), a.pow_mod(e1 * e2, m_odd));
  }
}

TEST(BigIntModular, MontgomeryEdgeValues) {
  Drbg rng(45);
  BigInt m = BigInt::random_bits(rng, 640);
  if (m.is_even()) m += BigInt{1};
  EXPECT_EQ(BigInt{0}.pow_mod(BigInt{5}, m), BigInt{0});
  EXPECT_EQ(BigInt{1}.pow_mod(BigInt::random_bits(rng, 300), m), BigInt{1});
  EXPECT_EQ((m - BigInt{1}).pow_mod(BigInt{2}, m), BigInt{1});  // (-1)^2
  EXPECT_EQ(m.pow_mod(BigInt{3}, m), BigInt{0});                // m ≡ 0
  // Fermat on a large prime (Montgomery path).
  const BigInt p = random_prime(rng, 512);
  const BigInt a = BigInt::random_below(rng, p - BigInt{2}) + BigInt{1};
  EXPECT_EQ(a.pow_mod(p - BigInt{1}, p), BigInt{1});
}

TEST(BigIntModular, InvModCorrect) {
  Drbg rng(11);
  const BigInt m = BigInt::from_decimal("1000000007");
  for (int iter = 0; iter < 30; ++iter) {
    const BigInt a = BigInt::random_below(rng, m - BigInt{1}) + BigInt{1};
    const BigInt inv = a.inv_mod(m);
    EXPECT_EQ(BigInt::mul_mod(a, inv, m).to_decimal(), "1");
  }
}

TEST(BigIntModular, InvModNonInvertibleThrows) {
  EXPECT_THROW((void)BigInt{6}.inv_mod(BigInt{9}), CryptoError);
  EXPECT_THROW((void)BigInt{0}.inv_mod(BigInt{7}), CryptoError);
}

TEST(BigIntModular, ExtGcdBezout) {
  Drbg rng(13);
  for (int iter = 0; iter < 30; ++iter) {
    BigInt a = BigInt::random_bits(rng, 96);
    BigInt b = BigInt::random_bits(rng, 80);
    BigInt x, y;
    const BigInt g = BigInt::ext_gcd(a, b, x, y);
    EXPECT_EQ(a * x + b * y, g);
    EXPECT_EQ(g, BigInt::gcd(a, b));
  }
}

TEST(BigIntModular, GcdLcmKnown) {
  EXPECT_EQ(BigInt::gcd(BigInt{48}, BigInt{36}).to_decimal(), "12");
  EXPECT_EQ(BigInt::lcm(BigInt{4}, BigInt{6}).to_decimal(), "12");
  EXPECT_EQ(BigInt::gcd(BigInt{0}, BigInt{5}).to_decimal(), "5");
  EXPECT_EQ(BigInt::lcm(BigInt{0}, BigInt{5}).to_decimal(), "0");
}

TEST(BigIntMisc, IsqrtExact) {
  Drbg rng(17);
  for (int iter = 0; iter < 30; ++iter) {
    BigInt a = BigInt::random_bits(rng, 300);
    const BigInt s = a.isqrt();
    EXPECT_TRUE(s * s <= a);
    EXPECT_TRUE((s + BigInt{1}) * (s + BigInt{1}) > a);
  }
  EXPECT_EQ(BigInt{144}.isqrt().to_decimal(), "12");
  EXPECT_EQ(BigInt{143}.isqrt().to_decimal(), "11");
  EXPECT_EQ(BigInt{0}.isqrt().to_decimal(), "0");
}

TEST(BigIntMisc, RandomBelowInRangeAndCoversSmallRange) {
  Drbg rng(19);
  const BigInt bound{10};
  bool seen[10] = {};
  for (int iter = 0; iter < 500; ++iter) {
    const BigInt v = BigInt::random_below(rng, bound);
    ASSERT_TRUE(v < bound);
    ASSERT_FALSE(v.is_negative());
    seen[v.to_u64()] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(BigIntMisc, RandomBitsHasExactWidth) {
  Drbg rng(23);
  for (std::size_t bits : {1u, 7u, 8u, 63u, 64u, 65u, 511u}) {
    EXPECT_EQ(BigInt::random_bits(rng, bits).bit_length(), bits);
  }
}

TEST(BigIntMisc, ToLongDoubleApproximation) {
  const BigInt v = BigInt{1} << 100;
  const long double ld = v.to_long_double();
  EXPECT_NEAR(static_cast<double>(ld / 1.2676506002282294e30L), 1.0, 1e-9);
  EXPECT_LT((-v).to_long_double(), 0.0L);
}

TEST(Prime, SmallKnownPrimes) {
  Drbg rng(29);
  for (std::uint64_t p : {2u, 3u, 5u, 97u, 65537u}) {
    EXPECT_TRUE(is_probable_prime(BigInt{p}, rng)) << p;
  }
  for (std::uint64_t c : {1u, 4u, 100u, 65539u * 3u}) {
    EXPECT_FALSE(is_probable_prime(BigInt{c}, rng)) << c;
  }
}

TEST(Prime, CarmichaelNumbersRejected) {
  Drbg rng(31);
  // 561, 1105, 1729 fool the Fermat test but not Miller-Rabin.
  for (std::uint64_t c : {561u, 1105u, 1729u, 2465u, 2821u}) {
    EXPECT_FALSE(is_probable_prime(BigInt{c}, rng)) << c;
  }
}

TEST(Prime, RandomPrimeHasRequestedSize) {
  Drbg rng(37);
  for (std::size_t bits : {32u, 64u, 128u, 256u}) {
    const BigInt p = random_prime(rng, bits);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(is_probable_prime(p, rng));
  }
}

TEST(Prime, SafePrimeStructure) {
  Drbg rng(41);
  const BigInt p = random_safe_prime(rng, 64);
  EXPECT_EQ(p.bit_length(), 64u);
  EXPECT_TRUE(is_probable_prime(p, rng));
  EXPECT_TRUE(is_probable_prime((p - BigInt{1}) >> 1, rng));
}

}  // namespace
}  // namespace smatch
