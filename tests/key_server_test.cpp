// Key-server endpoint tests: wire-level Keygen equals in-process Keygen,
// rate limiting meters brute-force attempts, malformed input rejected.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/key_server.hpp"
#include "crypto/drbg.hpp"

namespace smatch {
namespace {

RsaKeyPair test_rsa() {
  Drbg rng(777);
  return RsaKeyPair::generate(rng, 512);
}

SchemeParams test_params() {
  SchemeParams p;
  p.rs_threshold = 8;
  return p;
}

TEST(KeyServer, WireKeygenMatchesInProcessKeygen) {
  Drbg rng(1);
  RsaKeyPair rsa = test_rsa();
  const RsaOprfServer direct(RsaKeyPair{rsa});  // copy for the oracle
  KeyServer server(std::move(rsa));

  const FuzzyKeyGen kg(test_params(), 6);
  const Profile profile = {10, 20, 30, 40, 50, 60};

  KeygenSession session(kg, profile, server.public_key(), 1, rng);
  const Bytes response = server.handle(session.request_wire());
  const ProfileKey over_wire = session.finalize(response);

  const ProfileKey in_process = kg.derive(profile, direct, rng);
  EXPECT_EQ(over_wire.key, in_process.key);
  EXPECT_EQ(over_wire.index, in_process.index);
  EXPECT_EQ(server.evaluations(), 1u);
}

TEST(KeyServer, RateLimitsPerClient) {
  Drbg rng(2);
  KeyServer server(test_rsa(), /*requests_per_epoch=*/3);
  const FuzzyKeyGen kg(test_params(), 6);

  // A curious client probing guessed profiles: the 4th probe is refused.
  for (std::uint32_t i = 0; i < 3; ++i) {
    KeygenSession s(kg, Profile{i, i, i, i, i, i}, server.public_key(), 42, rng);
    EXPECT_NO_THROW((void)server.handle(s.request_wire()));
  }
  KeygenSession s4(kg, Profile{9, 9, 9, 9, 9, 9}, server.public_key(), 42, rng);
  EXPECT_THROW((void)server.handle(s4.request_wire()), ProtocolError);

  // Other clients are unaffected; a new epoch resets the budget.
  KeygenSession other(kg, Profile{1, 1, 1, 1, 1, 1}, server.public_key(), 43, rng);
  EXPECT_NO_THROW((void)server.handle(other.request_wire()));
  server.next_epoch();
  KeygenSession s5(kg, Profile{9, 9, 9, 9, 9, 9}, server.public_key(), 42, rng);
  EXPECT_NO_THROW((void)server.handle(s5.request_wire()));
}

TEST(KeyServer, UnlimitedBudgetWhenZero) {
  Drbg rng(3);
  KeyServer server(test_rsa(), 0);
  const FuzzyKeyGen kg(test_params(), 6);
  for (std::uint32_t i = 0; i < 20; ++i) {
    KeygenSession s(kg, Profile{i, 0, 0, 0, 0, 0}, server.public_key(), 7, rng);
    EXPECT_NO_THROW((void)server.handle(s.request_wire()));
  }
  EXPECT_EQ(server.evaluations(), 20u);
}

TEST(KeyServer, RejectsMalformedAndOutOfRangeRequests) {
  Drbg rng(4);
  KeyServer server(test_rsa());
  EXPECT_THROW((void)server.handle(Bytes{1, 2, 3}), SerdeError);
  // Blinded element 0 is outside the RSA group.
  const Bytes zero_req = KeyRequest{1, BigInt{0}}.serialize();
  EXPECT_THROW((void)server.handle(zero_req), CryptoError);
}

TEST(KeyServer, ClientDetectsTamperedResponse) {
  Drbg rng(5);
  KeyServer server(test_rsa());
  const FuzzyKeyGen kg(test_params(), 6);
  KeygenSession session(kg, Profile{1, 2, 3, 4, 5, 6}, server.public_key(), 1, rng);
  const Bytes response = server.handle(session.request_wire());
  KeyResponse tampered = KeyResponse::parse(response);
  tampered.evaluated += BigInt{1};
  EXPECT_THROW((void)session.finalize(tampered.serialize()), CryptoError);
}

TEST(KeyServer, MessagesRoundTrip) {
  const KeyRequest req{77, BigInt::from_decimal("123456789123456789")};
  const KeyRequest back = KeyRequest::parse(req.serialize());
  EXPECT_EQ(back.client_id, 77u);
  EXPECT_EQ(back.blinded, req.blinded);
  const KeyResponse resp{BigInt{42}};
  EXPECT_EQ(KeyResponse::parse(resp.serialize()).evaluated, BigInt{42});
}

}  // namespace
}  // namespace smatch
