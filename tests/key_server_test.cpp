// Key-service tests: wire-level Keygen equals in-process Keygen, batch
// equals sequential bit-for-bit, budgets meter brute-force attempts
// across epochs, and every error path (truncated/bit-flipped wire,
// unknown version, tampering) comes back as a Status — the public API
// never throws. The concurrency tests are meant to also run under TSan
// (scripts/ci.sh builds this target with -DSMATCH_SANITIZE=thread).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/client.hpp"
#include "core/key_server.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"
#include "group/modp_group.hpp"

namespace smatch {
namespace {

RsaKeyPair test_rsa() {
  Drbg rng(777);
  return RsaKeyPair::generate(rng, 512);
}

SchemeParams test_params() {
  SchemeParams p;
  p.rs_threshold = 8;
  return p;
}

TEST(KeyServer, WireKeygenMatchesInProcessKeygen) {
  Drbg rng(1);
  RsaKeyPair rsa = test_rsa();
  const RsaOprfServer direct(RsaKeyPair{rsa});  // copy for the oracle
  KeyServer server(std::move(rsa));

  const FuzzyKeyGen kg(test_params(), 6);
  const Profile profile = {10, 20, 30, 40, 50, 60};

  KeygenSession session(kg, profile, server.public_key(), 1, rng);
  const StatusOr<Bytes> response = server.handle(session.request_wire());
  ASSERT_TRUE(response.is_ok());
  const StatusOr<ProfileKey> over_wire = session.finalize(*response);
  ASSERT_TRUE(over_wire.is_ok());

  const ProfileKey in_process = kg.derive(profile, direct, rng);
  EXPECT_EQ(over_wire->key, in_process.key);
  EXPECT_EQ(over_wire->index, in_process.index);
  EXPECT_EQ(server.evaluations(), 1u);
}

TEST(KeyServer, BatchKeysBitIdenticalToSequential) {
  Drbg rng(11);
  RsaKeyPair rsa = test_rsa();
  KeyServer seq_server(RsaKeyPair{rsa}, KeyServerOptions{.requests_per_epoch = 0});
  KeyServer batch_server(std::move(rsa),
                         KeyServerOptions{.requests_per_epoch = 0, .batch_threads = 4});

  const FuzzyKeyGen kg(test_params(), 6);
  std::vector<KeygenSession> sessions;
  std::vector<Bytes> wires;
  for (std::uint32_t i = 0; i < 12; ++i) {
    const Profile p = {i * 7, i * 5 + 1, i, 2 * i, 100 - i, i + 3};
    sessions.emplace_back(kg, p, seq_server.public_key(), i + 1, rng);
    wires.push_back(sessions.back().request_wire());
  }

  // The same blinded request through both servers (same RSA key) must
  // finalize to byte-identical ProfileKeys.
  const std::vector<StatusOr<Bytes>> batched = batch_server.handle_batch(wires);
  ASSERT_EQ(batched.size(), wires.size());
  for (std::size_t i = 0; i < wires.size(); ++i) {
    const StatusOr<Bytes> seq_resp = seq_server.handle(wires[i]);
    ASSERT_TRUE(seq_resp.is_ok());
    ASSERT_TRUE(batched[i].is_ok()) << batched[i].status().to_string();
    const StatusOr<ProfileKey> seq_key = sessions[i].finalize(*seq_resp);
    const StatusOr<ProfileKey> batch_key = sessions[i].finalize(*batched[i]);
    ASSERT_TRUE(seq_key.is_ok());
    ASSERT_TRUE(batch_key.is_ok());
    EXPECT_EQ(seq_key->key, batch_key->key);
    EXPECT_EQ(seq_key->index, batch_key->index);
  }

  const KeyServerMetrics m = batch_server.metrics();
  EXPECT_EQ(m.evaluations, wires.size());
  EXPECT_EQ(m.batches, 1u);
  EXPECT_EQ(m.batched_requests, wires.size());
  EXPECT_EQ(m.batch_size_histogram.at(wires.size()), 1u);
}

TEST(KeyServer, BudgetExhaustionAcrossEpochs) {
  Drbg rng(2);
  KeyServer server(test_rsa(), /*requests_per_epoch=*/3);
  const FuzzyKeyGen kg(test_params(), 6);

  const auto probe = [&](UserId client, std::uint32_t salt) {
    KeygenSession s(kg, Profile{salt, salt, salt, salt, salt, salt},
                    server.public_key(), client, rng);
    return server.handle(s.request_wire());
  };

  // A curious client probing guessed profiles: the 4th probe is refused.
  for (std::uint32_t i = 0; i < 3; ++i) EXPECT_TRUE(probe(42, i).is_ok());
  EXPECT_EQ(probe(42, 9).code(), StatusCode::kBudgetExhausted);

  // Other clients are unaffected.
  EXPECT_TRUE(probe(43, 1).is_ok());

  // A new epoch resets the budget — and the next epoch meters it again.
  server.next_epoch();
  for (std::uint32_t i = 0; i < 3; ++i) EXPECT_TRUE(probe(42, 20 + i).is_ok());
  EXPECT_EQ(probe(42, 30).code(), StatusCode::kBudgetExhausted);

  const KeyServerMetrics m = server.metrics();
  EXPECT_EQ(m.budget_rejections, 2u);
  EXPECT_EQ(m.evaluations, 7u);
}

TEST(KeyServer, UnlimitedBudgetWhenZero) {
  Drbg rng(3);
  KeyServer server(test_rsa(), 0);
  const FuzzyKeyGen kg(test_params(), 6);
  for (std::uint32_t i = 0; i < 20; ++i) {
    KeygenSession s(kg, Profile{i, 0, 0, 0, 0, 0}, server.public_key(), 7, rng);
    EXPECT_TRUE(server.handle(s.request_wire()).is_ok());
  }
  EXPECT_EQ(server.evaluations(), 20u);
}

TEST(KeyServer, MalformedWireRejectedWithoutThrowing) {
  Drbg rng(4);
  KeyServer server(test_rsa());
  const FuzzyKeyGen kg(test_params(), 6);
  KeygenSession session(kg, Profile{1, 2, 3, 4, 5, 6}, server.public_key(), 1, rng);
  const Bytes wire = session.request_wire();

  // Garbage and every prefix truncation: kMalformedMessage, no throw.
  EXPECT_EQ(server.handle(Bytes{1, 2, 3}).code(), StatusCode::kMalformedMessage);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const auto r = server.handle(BytesView(wire).subspan(0, len));
    EXPECT_FALSE(r.is_ok()) << "truncation to " << len << " accepted";
  }

  // Bit flips never crash; header flips never parse as current traffic.
  for (int iter = 0; iter < 100; ++iter) {
    Bytes mutated = wire;
    const std::size_t pos = rng.below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    const auto r = server.handle(mutated);
    if (pos < kWireHeaderBytes) EXPECT_FALSE(r.is_ok()) << pos;
  }

  // Blinded element outside the RSA group (0 and n) is malformed, not a
  // crypto exception.
  EXPECT_EQ(server.handle(KeyRequest{1, BigInt{0}}.serialize()).code(),
            StatusCode::kMalformedMessage);
  EXPECT_EQ(server.handle(KeyRequest{1, server.public_key().n}.serialize()).code(),
            StatusCode::kMalformedMessage);
  EXPECT_GT(server.metrics().malformed_rejections, 0u);
}

TEST(KeyServer, UnknownWireVersionRejected) {
  Drbg rng(6);
  KeyServer server(test_rsa());
  const FuzzyKeyGen kg(test_params(), 6);
  KeygenSession session(kg, Profile{1, 2, 3, 4, 5, 6}, server.public_key(), 1, rng);
  Bytes wire = session.request_wire();
  wire[2] = kWireVersion + 1;  // header = magic:u16 || version:u8
  EXPECT_EQ(server.handle(wire).code(), StatusCode::kUnsupportedVersion);
  EXPECT_EQ(server.metrics().version_rejections, 1u);
  EXPECT_EQ(server.evaluations(), 0u);

  // The client rejects a version-bumped response the same way.
  KeyResponse resp{BigInt{42}};
  Bytes resp_wire = resp.serialize();
  resp_wire[2] = kWireVersion + 1;
  EXPECT_EQ(session.finalize(resp_wire).code(), StatusCode::kUnsupportedVersion);
}

TEST(KeyServer, ClientDetectsTamperedResponse) {
  Drbg rng(5);
  KeyServer server(test_rsa());
  const FuzzyKeyGen kg(test_params(), 6);
  KeygenSession session(kg, Profile{1, 2, 3, 4, 5, 6}, server.public_key(), 1, rng);
  const StatusOr<Bytes> response = server.handle(session.request_wire());
  ASSERT_TRUE(response.is_ok());

  StatusOr<KeyResponse> tampered = KeyResponse::parse(*response);
  ASSERT_TRUE(tampered.is_ok());
  tampered->evaluated += BigInt{1};
  EXPECT_EQ(session.finalize(tampered->serialize()).code(),
            StatusCode::kMalformedMessage);

  // Truncated responses are wire damage, also Status not throw.
  const Bytes& good = *response;
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(session.finalize(BytesView(good).subspan(0, len)).is_ok());
  }
}

TEST(KeyServer, MessagesRoundTrip) {
  const KeyRequest req{77, BigInt::from_decimal("123456789123456789")};
  const StatusOr<KeyRequest> back = KeyRequest::parse(req.serialize());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->client_id, 77u);
  EXPECT_EQ(back->blinded, req.blinded);
  const KeyResponse resp{BigInt{42}};
  const StatusOr<KeyResponse> rback = KeyResponse::parse(resp.serialize());
  ASSERT_TRUE(rback.is_ok());
  EXPECT_EQ(rback->evaluated, BigInt{42});
}

TEST(KeyServer, EnrollBatchInstallsKeysAndReportsFailures) {
  Drbg rng(8);
  // Budget of 2 with 3 clients sharing one client id spread across
  // distinct ids: give each its own id so all succeed, then a second
  // enrollment round for one id hits the budget.
  KeyServer server(test_rsa(), /*requests_per_epoch=*/2);

  DatasetSpec spec;
  spec.name = "enroll-batch";
  spec.num_users = 3;
  for (const char* name : {"a", "b", "c", "d"}) {
    spec.attributes.push_back(AttributeSpec::uniform(name, 6.0));
  }
  SchemeParams params = test_params();
  auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());
  const ClientConfig config = make_client_config(spec, params, group);

  // quant_width = 8: alice and bob both quantize to {2, 4, 5, 6}; carol
  // is several cells away on every attribute.
  Client alice = Client::create(1, Profile{17, 33, 41, 49}, config).value();
  Client bob = Client::create(2, Profile{15, 31, 39, 47}, config).value();
  Client carol = Client::create(3, Profile{60, 5, 10, 62}, config).value();
  const std::array<Client*, 3> phones = {&alice, &bob, &carol};

  ThreadPool pool(2);
  const auto enrolled = enroll_and_upload_batch(phones, server, rng, &pool);
  ASSERT_EQ(enrolled.size(), 3u);
  for (std::size_t i = 0; i < enrolled.size(); ++i) {
    ASSERT_TRUE(enrolled[i].is_ok()) << enrolled[i].status().to_string();
    EXPECT_EQ(enrolled[i]->user_id, phones[i]->id());
    EXPECT_EQ(enrolled[i]->key_index, phones[i]->profile_key().index);
    EXPECT_FALSE(enrolled[i]->auth_token.empty());
  }
  // Similar profiles share a key group; the outlier does not.
  EXPECT_EQ(alice.profile_key().index, bob.profile_key().index);
  EXPECT_NE(alice.profile_key().index, carol.profile_key().index);

  // Re-enrolling alice twice more exhausts her budget of 2: the second
  // round carries a kBudgetExhausted entry instead of an upload.
  const std::array<Client*, 1> just_alice = {&alice};
  EXPECT_TRUE(enroll_and_upload_batch(just_alice, server, rng, &pool)[0].is_ok());
  EXPECT_EQ(enroll_and_upload_batch(just_alice, server, rng, &pool)[0].code(),
            StatusCode::kBudgetExhausted);
}

// Concurrency: hammer one server from several threads — mixed valid,
// over-budget, and malformed traffic — then check the books balance.
// Run under TSan via scripts/ci.sh.
TEST(KeyServerStress, ConcurrentHandleAndMetricsAreRaceFree) {
  Drbg setup_rng(99);
  KeyServer server(test_rsa(),
                   KeyServerOptions{.requests_per_epoch = 8, .num_shards = 4});
  const FuzzyKeyGen kg(test_params(), 6);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 16;

  // Pre-build wires on the main thread (sessions need the shared rng).
  std::vector<std::vector<Bytes>> wires(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      const auto v = static_cast<std::uint32_t>(t * kPerThread + i);
      KeygenSession s(kg, Profile{v, v, v, v, v, v}, server.public_key(),
                      /*client_id=*/static_cast<UserId>(t % 2), setup_rng);
      wires[t].push_back(s.request_wire());
    }
  }

  std::atomic<std::uint64_t> ok{0}, over_budget{0}, malformed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        // Every 4th request is garbage.
        const StatusOr<Bytes> r = (i % 4 == 3)
                                      ? server.handle(Bytes{0x00, 0x01, 0x02})
                                      : server.handle(wires[t][i]);
        if (r.is_ok()) {
          ++ok;
        } else if (r.code() == StatusCode::kBudgetExhausted) {
          ++over_budget;
        } else {
          ++malformed;
        }
        if (i == kPerThread / 2) (void)server.metrics();  // snapshot under fire
      }
    });
  }
  for (auto& th : threads) th.join();

  // Two client ids, budget 8 each: exactly 16 evaluations; the rest of
  // the valid traffic bounced off the budget.
  EXPECT_EQ(ok.load(), 16u);
  EXPECT_EQ(server.evaluations(), 16u);
  const KeyServerMetrics m = server.metrics();
  EXPECT_EQ(m.evaluations, 16u);
  EXPECT_EQ(m.budget_rejections, over_budget.load());
  EXPECT_EQ(m.malformed_rejections, malformed.load());
  EXPECT_EQ(ok + over_budget + malformed, kThreads * kPerThread);
}

TEST(KeyServerStress, ConcurrentBatchesShareOneBudgetLedger) {
  KeyServer server(test_rsa(),
                   KeyServerOptions{.requests_per_epoch = 4, .num_shards = 2,
                                    .batch_threads = 3});
  Drbg rng(123);
  const FuzzyKeyGen kg(test_params(), 6);

  // 3 clients x 8 requests each, shuffled into one batch: each client
  // gets exactly 4 evaluations regardless of scheduling.
  std::vector<Bytes> wires;
  for (std::uint32_t i = 0; i < 8; ++i) {
    for (UserId client = 1; client <= 3; ++client) {
      KeygenSession s(kg, Profile{i, client, i, client, i, client},
                      server.public_key(), client, rng);
      wires.push_back(s.request_wire());
    }
  }
  const auto results = server.handle_batch(wires);
  std::size_t ok = 0, rejected = 0;
  for (const auto& r : results) {
    if (r.is_ok()) {
      ++ok;
    } else {
      EXPECT_EQ(r.code(), StatusCode::kBudgetExhausted);
      ++rejected;
    }
  }
  EXPECT_EQ(ok, 12u);
  EXPECT_EQ(rejected, 12u);
  EXPECT_EQ(server.evaluations(), 12u);
}

}  // namespace
}  // namespace smatch
