// Paillier cryptosystem tests: round trips and the homomorphic identities
// the homoPM baseline relies on.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "crypto/drbg.hpp"
#include "paillier/paillier.hpp"

namespace smatch {
namespace {

const PaillierKeyPair& shared_keys() {
  static const PaillierKeyPair kp = [] {
    Drbg rng(2024);
    return PaillierKeyPair::generate(rng, 512);
  }();
  return kp;
}

TEST(Paillier, EncryptDecryptRoundTrip) {
  const auto& kp = shared_keys();
  Drbg rng(1);
  for (int iter = 0; iter < 10; ++iter) {
    const BigInt m = BigInt::random_below(rng, kp.public_key().n);
    EXPECT_EQ(kp.decrypt(kp.public_key().encrypt(m, rng)), m);
  }
}

TEST(Paillier, EncryptionIsRandomized) {
  const auto& kp = shared_keys();
  Drbg rng(2);
  const BigInt m{42};
  const BigInt c1 = kp.public_key().encrypt(m, rng);
  const BigInt c2 = kp.public_key().encrypt(m, rng);
  EXPECT_NE(c1, c2);
  EXPECT_EQ(kp.decrypt(c1), kp.decrypt(c2));
}

TEST(Paillier, AdditiveHomomorphism) {
  const auto& kp = shared_keys();
  const auto& pk = kp.public_key();
  Drbg rng(3);
  for (int iter = 0; iter < 10; ++iter) {
    const BigInt a = BigInt::random_below(rng, BigInt{1} << 128);
    const BigInt b = BigInt::random_below(rng, BigInt{1} << 128);
    const BigInt c = pk.add(pk.encrypt(a, rng), pk.encrypt(b, rng));
    EXPECT_EQ(kp.decrypt(c), a + b);
  }
}

TEST(Paillier, PlaintextAdditionAndMultiplication) {
  const auto& kp = shared_keys();
  const auto& pk = kp.public_key();
  Drbg rng(4);
  const BigInt a{1000}, k{37};
  const BigInt enc_a = pk.encrypt(a, rng);
  EXPECT_EQ(kp.decrypt(pk.add_plain(enc_a, k)), a + k);
  EXPECT_EQ(kp.decrypt(pk.mul_plain(enc_a, k)), a * k);
}

TEST(Paillier, NegationAndSignedDecrypt) {
  const auto& kp = shared_keys();
  const auto& pk = kp.public_key();
  Drbg rng(5);
  const BigInt a{123456};
  const BigInt neg = pk.negate(pk.encrypt(a, rng));
  EXPECT_EQ(kp.decrypt_signed(neg), -a);
  EXPECT_EQ(kp.decrypt(neg), pk.n - a);
}

TEST(Paillier, BlindedDistanceShapeUsedByHomoPm) {
  // E(a^2) * E(-2a)^b * g^{b^2} decrypts to (a-b)^2.
  const auto& kp = shared_keys();
  const auto& pk = kp.public_key();
  Drbg rng(6);
  const BigInt a{900}, b{650};
  const BigInt enc = pk.add_plain(
      pk.add(pk.encrypt(a * a, rng), pk.mul_plain(pk.encrypt(pk.n - (a << 1), rng), b)),
      b * b);
  EXPECT_EQ(kp.decrypt(enc), (a - b) * (a - b));
}

TEST(Paillier, RejectsOutOfRangeInputs) {
  const auto& kp = shared_keys();
  const auto& pk = kp.public_key();
  Drbg rng(7);
  EXPECT_THROW((void)pk.encrypt(pk.n, rng), CryptoError);
  EXPECT_THROW((void)pk.encrypt(BigInt{-1}, rng), CryptoError);
  EXPECT_THROW((void)kp.decrypt(pk.n_sq), CryptoError);
}

TEST(Paillier, RejectsTinyModulus) {
  Drbg rng(8);
  EXPECT_THROW((void)PaillierKeyPair::generate(rng, 32), CryptoError);
}

}  // namespace
}  // namespace smatch
