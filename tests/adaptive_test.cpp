// Adaptive-width extension tests (paper Section X future work):
// per-attribute widths sized from attribute entropy, heterogeneous
// chains, and the end-to-end pipeline under adaptive configs.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "common/error.hpp"
#include "core/smatch.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"

namespace smatch {
namespace {

TEST(AdaptiveWidths, MeetsEntropyTargetPerAttribute) {
  const DatasetSpec spec = infocom06_spec();
  std::vector<std::vector<double>> probs;
  for (const auto& a : spec.attributes) probs.push_back(a.probs);

  const AdaptiveWidths w = AdaptiveWidths::for_target(probs, 64.0);
  ASSERT_EQ(w.bits.size(), probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    EXPECT_GE(EntropyMapper(probs[i], w.bits[i]).mapped_entropy(), 64.0) << "attr " << i;
  }
  EXPECT_GE(w.achieved_entropy(probs), 64.0);
}

TEST(AdaptiveWidths, WidthTracksAlphabetSize) {
  // A 2-value attribute needs ~T+2 bits; a 512-value attribute ~T+10.
  const std::vector<double> small(2, 0.5);
  const std::vector<double> large(512, 1.0 / 512);
  const AdaptiveWidths w = AdaptiveWidths::for_target({small, large}, 64.0);
  EXPECT_LT(w.bits[0], w.bits[1]);
  EXPECT_GE(w.bits[1], 74u);  // 64 + lg(512) + 1
  EXPECT_LE(w.bits[0], 70u);
}

TEST(AdaptiveWidths, BeatsWorstCaseUniformSizing) {
  // Uniform sizing must use max_i(width_i) for every attribute; adaptive
  // uses just what each needs, so the chain shrinks.
  const DatasetSpec spec = weibo_spec(1);
  std::vector<std::vector<double>> probs;
  for (const auto& a : spec.attributes) probs.push_back(a.probs);
  const AdaptiveWidths w = AdaptiveWidths::for_target(probs, 64.0);
  const std::size_t worst = *std::max_element(w.bits.begin(), w.bits.end());
  EXPECT_LT(w.chain_bits(), worst * probs.size());
}

TEST(AdaptiveWidths, RejectsBadTargets) {
  EXPECT_THROW((void)AdaptiveWidths::for_target({{0.5, 0.5}}, 0.0), Error);
  EXPECT_THROW((void)AdaptiveWidths::for_target({{0.5, 0.5}}, -3.0), Error);
}

TEST(HeterogeneousChain, RoundTripWithMixedWidths) {
  const AttributeChain chain(std::vector<std::size_t>{8, 32, 16, 64});
  EXPECT_EQ(chain.chain_bits(), 120u);
  Drbg rng(1);
  const Bytes key = rng.bytes(32);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<BigInt> mapped = {
        BigInt{rng.below(1u << 8)},
        BigInt{rng.below(1u << 31)},
        BigInt{rng.below(1u << 16)},
        BigInt::random_below(rng, BigInt{1} << 64),
    };
    EXPECT_EQ(chain.disassemble(chain.assemble(mapped, key), key), mapped);
  }
}

TEST(HeterogeneousChain, EnforcesPerAttributeWidths) {
  const AttributeChain chain(std::vector<std::size_t>{8, 16});
  Drbg rng(2);
  const Bytes key = rng.bytes(32);
  // 256 exceeds the 8-bit slot even though it fits the 16-bit one.
  EXPECT_THROW((void)chain.assemble({BigInt{256}, BigInt{1}}, key), Error);
  EXPECT_NO_THROW((void)chain.assemble({BigInt{255}, BigInt{65535}}, key));
  EXPECT_THROW(AttributeChain(std::vector<std::size_t>{}), Error);
  EXPECT_THROW(AttributeChain(std::vector<std::size_t>{8, 0}), Error);
}

TEST(AdaptiveEndToEnd, PipelineMatchesAndShrinksUploads) {
  Drbg rng(3);
  DatasetSpec spec;
  spec.name = "adaptive";
  spec.num_users = 10;
  // One low-entropy and two high-entropy attributes.
  spec.attributes = {AttributeSpec::landmark("lm", 1.0, 0.7),
                     AttributeSpec::uniform("u1", 6.0),
                     AttributeSpec::uniform("u2", 6.0)};

  SchemeParams params;
  params.attribute_bits = 96;  // uniform baseline sized for the worst attribute
  params.rs_threshold = 8;
  auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());

  ClientConfig uniform_cfg = make_client_config(spec, params, group);
  ClientConfig adaptive_cfg = uniform_cfg;
  adaptive_cfg.adaptive_widths =
      AdaptiveWidths::for_target(adaptive_cfg.attribute_probs, 64.0).bits;

  RsaOprfServer oprf(RsaKeyPair::generate(rng, 512));
  MatchServer server;

  const Dataset ds = Dataset::generate_clustered(spec, rng, 2, 0);
  std::vector<Client> clients;
  std::size_t adaptive_bytes = 0;
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    clients.push_back(
        Client::create(static_cast<UserId>(u + 1), ds.profile(u), adaptive_cfg).value());
    clients.back().generate_key(oprf, rng);
    const Bytes wire = clients.back().make_upload(rng).serialize();
    adaptive_bytes = wire.size();
    ASSERT_TRUE(server.ingest(UploadMessage::parse(wire).value()).is_ok());
  }

  // Matching and verification work end-to-end under adaptive widths.
  std::size_t matched = 0, verified = 0;
  for (auto& c : clients) {
    const QueryResult r = server.match(c.make_query(1, 1), 5).value();
    matched += r.entries.size();
    verified += c.count_verified(r);
  }
  EXPECT_GT(matched, 0u);
  EXPECT_EQ(matched, verified);

  // And uploads are smaller than the uniform worst-case sizing.
  Client uniform_client = Client::create(99, ds.profile(0), uniform_cfg).value();
  uniform_client.generate_key(oprf, rng);
  const std::size_t uniform_bytes = uniform_client.make_upload(rng).serialize().size();
  EXPECT_LT(adaptive_bytes, uniform_bytes);
}

TEST(AdaptiveEndToEnd, MismatchedWidthTableRejected) {
  const DatasetSpec spec = infocom06_spec();
  ClientConfig cfg = make_client_config(
      spec, SchemeParams{}, std::make_shared<const ModpGroup>(ModpGroup::test_512()));
  cfg.adaptive_widths = {64, 64};  // 2 widths for 6 attributes
  EXPECT_EQ(Client::create(1, Profile{1, 2, 3, 4, 5, 6}, cfg).code(),
            StatusCode::kMalformedMessage);
}

}  // namespace
}  // namespace smatch
